// §8 Discussion cases — structured constraints layered on top of the
// column-vector sparse encoding.
//
// Case 1 (training): backward propagation needs both W and Wᵀ.  If the
// nonzeros form SQUARE V x V blocks aligned in both dimensions, both
// matrices admit the column-vector encoding, and the transpose can be
// computed purely on the encoded form (one column index per block).
//
// Case 2 (global attention): all column vectors of a row are zero or
// nonzero together — fully-dense rows in an otherwise empty matrix,
// the "short and wide" pattern of the sparse transformer's global
// tokens.  Such patterns are ordinary Cvs values; the helpers build
// and recognize them.
#pragma once

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/cvs.hpp"

namespace vsparse {

/// Random CVS matrix whose nonzeros form aligned V x V square blocks
/// (Case 1).  `sparsity` counts zeros at block granularity.
Cvs make_square_block_cvs(int m, int k, int v, double sparsity, Rng& rng);

/// True iff the pattern consists of aligned v x v square blocks (every
/// stored vector's column belongs to a fully-populated block column).
bool has_square_block_structure(const Cvs& a);

/// Transpose a square-block CVS matrix entirely on the encoded form —
/// the §8 Case 1 operation enabling backward-pass SpMM with Wᵀ.
/// Requires has_square_block_structure(a).
Cvs transpose_square_block_cvs(const Cvs& a);

/// CVS pattern where `dense_rows` randomly-chosen vector-rows are fully
/// dense and all others empty (Case 2's global-attention rows).
Cvs make_global_row_cvs(int m, int k, int v, int dense_vec_rows, Rng& rng);

}  // namespace vsparse

#include "vsparse/formats/smtx_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "vsparse/serve/error.hpp"

namespace vsparse {

// Every reader-side invariant violation is a classified
// malformed-format error so the serving layer can reject the input
// without retrying or degrading.
#define SMTX_CHECK(cond, msg) \
  VSPARSE_CHECK_RAISE(cond, ErrorCode::kMalformedFormat, "formats.smtx", msg)

namespace {

/// Read one line of whitespace/comma separated integers.
std::vector<std::int32_t> read_int_line(std::istream& is,
                                        std::size_t expected) {
  std::string line;
  SMTX_CHECK(static_cast<bool>(std::getline(is, line)),
                    "smtx: unexpected end of stream");
  for (char& c : line) {
    if (c == ',') c = ' ';
  }
  std::istringstream ls(line);
  std::vector<std::int32_t> out;
  // `expected` is caller-derived from a validated header, but clamp the
  // speculative reserve anyway — the vector still grows to whatever the
  // line actually holds, and oversized lines fail the length checks.
  out.reserve(std::min(expected, static_cast<std::size_t>(kMaxSmtxNnz) + 1));
  std::int64_t x;
  while (ls >> x) {
    SMTX_CHECK(x >= 0 && x <= 0x7fffffff, "smtx: index out of range");
    out.push_back(static_cast<std::int32_t>(x));
  }
  return out;
}

}  // namespace

SmtxPattern read_smtx(std::istream& is) {
  const auto header = read_int_line(is, 3);
  SMTX_CHECK(header.size() == 3,
                    "smtx: header must be 'rows, cols, nnz'");
  SmtxPattern p;
  p.rows = header[0];
  p.cols = header[1];
  // Validate the header extents BEFORE they size any container: a
  // corrupt rows of 2^31-1 must fail here, not in a rows+1 reserve.
  SMTX_CHECK(p.rows <= kMaxSmtxExtent && p.cols <= kMaxSmtxExtent,
             "smtx: extents " << p.rows << "x" << p.cols << " exceed cap "
                              << kMaxSmtxExtent);
  SMTX_CHECK(static_cast<std::int64_t>(header[2]) <= kMaxSmtxNnz,
             "smtx: nnz " << header[2] << " exceeds cap " << kMaxSmtxNnz);
  SMTX_CHECK(static_cast<std::int64_t>(header[2]) <=
                 static_cast<std::int64_t>(p.rows) *
                     static_cast<std::int64_t>(p.cols),
             "smtx: nnz " << header[2] << " exceeds rows*cols");
  const auto nnz = static_cast<std::size_t>(header[2]);

  p.row_ptr = read_int_line(is, static_cast<std::size_t>(p.rows) + 1);
  SMTX_CHECK(p.row_ptr.size() == static_cast<std::size_t>(p.rows) + 1,
                    "smtx: row_ptr length " << p.row_ptr.size() << " != rows+1");
  SMTX_CHECK(p.row_ptr.front() == 0 &&
                        p.row_ptr.back() == static_cast<std::int32_t>(nnz),
                    "smtx: row_ptr endpoints inconsistent with nnz");
  for (std::size_t i = 1; i < p.row_ptr.size(); ++i) {
    SMTX_CHECK(p.row_ptr[i] >= p.row_ptr[i - 1],
                      "smtx: row_ptr not monotone at row " << i);
  }

  p.col_idx = read_int_line(is, nnz);
  SMTX_CHECK(p.col_idx.size() == nnz,
                    "smtx: col_idx length " << p.col_idx.size()
                                            << " != nnz " << nnz);
  for (std::int32_t c : p.col_idx) {
    SMTX_CHECK(c < p.cols, "smtx: column " << c << " out of range");
  }
  return p;
}

SmtxPattern read_smtx_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SMTX_CHECK(is.good(), "smtx: cannot open " << path);
  is.seekg(0, std::ios::end);
  const auto bytes = is.tellg();
  SMTX_CHECK(bytes >= 0 && static_cast<std::uint64_t>(bytes) <= kMaxSmtxFileBytes,
             "smtx: file is " << bytes << " B, cap " << kMaxSmtxFileBytes
                              << ": " << path);
  is.seekg(0, std::ios::beg);
  return read_smtx(is);
}

void write_smtx(std::ostream& os, const SmtxPattern& p) {
  os << p.rows << ", " << p.cols << ", " << p.col_idx.size() << "\n";
  for (std::size_t i = 0; i < p.row_ptr.size(); ++i) {
    os << (i ? " " : "") << p.row_ptr[i];
  }
  os << "\n";
  for (std::size_t i = 0; i < p.col_idx.size(); ++i) {
    os << (i ? " " : "") << p.col_idx[i];
  }
  os << "\n";
}

void write_smtx_file(const std::string& path, const SmtxPattern& p) {
  std::ofstream os(path);
  SMTX_CHECK(os.good(), "smtx: cannot open " << path << " for write");
  write_smtx(os, p);
}

Cvs smtx_to_cvs(const SmtxPattern& p, int v, Rng& rng) {
  SMTX_CHECK(v == 1 || v == 2 || v == 4 || v == 8,
             "smtx: V must be 1, 2, 4 or 8, got " << v);
  SMTX_CHECK(p.rows <= (0x7fffffff) / v,
             "smtx: rows " << p.rows << " * V " << v << " overflows int");
  Cvs out;
  out.rows = p.rows * v;  // each pattern row becomes one vector-row
  out.cols = p.cols;
  out.v = v;
  out.row_ptr = p.row_ptr;
  out.col_idx = p.col_idx;
  out.values.resize(out.col_idx.size() * static_cast<std::size_t>(v));
  for (half_t& h : out.values) h = half_t(rng.uniform_float(0.5f, 1.5f));
  out.validate();
  return out;
}

SmtxPattern cvs_to_smtx(const Cvs& m) {
  return SmtxPattern{m.vec_rows(), m.cols, m.row_ptr, m.col_idx};
}

}  // namespace vsparse

// Compressed Sparse Row — the fine-grained baseline format (V = 1) and
// the index backbone the column-vector encoding generalizes (§4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/formats/dense.hpp"

namespace vsparse {

/// Standard CSR with int32 indices.
template <class T>
struct Csr {
  int rows = 0;
  int cols = 0;
  std::vector<std::int32_t> row_ptr;  ///< size rows + 1
  std::vector<std::int32_t> col_idx;  ///< size nnz
  std::vector<T> values;              ///< size nnz

  std::int64_t nnz() const { return static_cast<std::int64_t>(col_idx.size()); }

  /// Fraction of zero entries.
  double sparsity() const {
    const double total = static_cast<double>(rows) * cols;
    return total == 0 ? 0.0 : 1.0 - static_cast<double>(nnz()) / total;
  }

  /// Structural invariants: monotone row_ptr, in-range sorted columns.
  void validate() const {
    VSPARSE_CHECK(static_cast<int>(row_ptr.size()) == rows + 1);
    VSPARSE_CHECK(row_ptr.front() == 0);
    VSPARSE_CHECK(row_ptr.back() == nnz());
    VSPARSE_CHECK(values.size() == col_idx.size());
    for (int r = 0; r < rows; ++r) {
      VSPARSE_CHECK(row_ptr[static_cast<std::size_t>(r)] <=
                    row_ptr[static_cast<std::size_t>(r) + 1]);
      for (std::int32_t i = row_ptr[static_cast<std::size_t>(r)];
           i < row_ptr[static_cast<std::size_t>(r) + 1]; ++i) {
        const std::int32_t c = col_idx[static_cast<std::size_t>(i)];
        VSPARSE_CHECK(c >= 0 && c < cols);
        if (i > row_ptr[static_cast<std::size_t>(r)]) {
          VSPARSE_CHECK(col_idx[static_cast<std::size_t>(i) - 1] < c);
        }
      }
    }
  }

  static Csr<T> from_dense(const DenseMatrix<T>& m) {
    Csr<T> out;
    out.rows = m.rows();
    out.cols = m.cols();
    out.row_ptr.reserve(static_cast<std::size_t>(m.rows()) + 1);
    out.row_ptr.push_back(0);
    for (int r = 0; r < m.rows(); ++r) {
      for (int c = 0; c < m.cols(); ++c) {
        if (static_cast<float>(m.at(r, c)) != 0.0f) {
          out.col_idx.push_back(c);
          out.values.push_back(m.at(r, c));
        }
      }
      out.row_ptr.push_back(static_cast<std::int32_t>(out.col_idx.size()));
    }
    return out;
  }

  DenseMatrix<T> to_dense() const {
    DenseMatrix<T> m(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (std::int32_t i = row_ptr[static_cast<std::size_t>(r)];
           i < row_ptr[static_cast<std::size_t>(r) + 1]; ++i) {
        m.at(r, col_idx[static_cast<std::size_t>(i)]) =
            values[static_cast<std::size_t>(i)];
      }
    }
    return m;
  }
};

/// Device mirror of a CSR matrix.
template <class T>
struct CsrDevice {
  gpusim::Buffer<std::int32_t> row_ptr;
  gpusim::Buffer<std::int32_t> col_idx;
  gpusim::Buffer<T> values;
  int rows = 0;
  int cols = 0;
};

template <class T>
CsrDevice<T> to_device(gpusim::Device& dev, const Csr<T>& m) {
  return CsrDevice<T>{dev.alloc_copy<std::int32_t>(m.row_ptr),
                      dev.alloc_copy<std::int32_t>(m.col_idx),
                      dev.alloc_copy<T>(m.values), m.rows, m.cols};
}

}  // namespace vsparse

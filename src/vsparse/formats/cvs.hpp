// Column-Vector Sparse encoding — the paper's first contribution (§4).
//
// Equivalent to CSR where each nonzero scalar is replaced by a nonzero
// Vx1 *column vector* (V in {1,2,4,8}): the elements of each vector are
// contiguous in memory (half2/half4/half8 loads), consecutive vectors
// of the same vector-row are contiguous too, and the index arrays are
// exactly CSR's csrRowPtr/csrColInd over the (M/V) x K "vector rows"
// (Fig. 8).  V=1 degenerates to ordinary CSR, which is how the
// fine-grained baselines are expressed.
//
// The same structure doubles as the binary SDDMM *output mask* — the
// mask is the pattern without values (§6.4).
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/fp16/half.hpp"
#include "vsparse/formats/dense.hpp"

namespace vsparse {

/// Column-vector sparse matrix of halves.
struct Cvs {
  int rows = 0;  ///< M, must be a multiple of v
  int cols = 0;  ///< K (SpMM LHS) or N (SDDMM output)
  int v = 1;     ///< column-vector length (grain size V x 1)
  std::vector<std::int32_t> row_ptr;  ///< size rows/v + 1, in vector units
  std::vector<std::int32_t> col_idx;  ///< column of each nonzero vector
  std::vector<half_t> values;         ///< nnz_vectors * v halves

  int vec_rows() const { return rows / v; }
  std::int64_t nnz_vectors() const {
    return static_cast<std::int64_t>(col_idx.size());
  }
  std::int64_t nnz() const { return nnz_vectors() * v; }

  /// Fraction of zero entries (vector granularity: a stored vector is
  /// all-nonzero by construction).
  double sparsity() const {
    const double total = static_cast<double>(rows) * cols;
    return total == 0 ? 0.0 : 1.0 - static_cast<double>(nnz()) / total;
  }

  /// Structural invariants (also value-array sizing).
  void validate() const;

  /// Encode a dense matrix: every Vx1 column vector containing at least
  /// one nonzero becomes a stored vector (zeros within it are kept, as
  /// the encoding is vector-granular).
  static Cvs from_dense(const DenseMatrix<half_t>& m, int v);

  DenseMatrix<half_t> to_dense() const;
};

/// Device mirror of a Cvs matrix.  Templated on the value type so the
/// single-precision fine-grained baselines (Fig. 4) can reuse the same
/// kernels with float values at V = 1.
template <class T>
struct CvsDeviceT {
  gpusim::Buffer<std::int32_t> row_ptr;
  gpusim::Buffer<std::int32_t> col_idx;
  gpusim::Buffer<T> values;
  int rows = 0;
  int cols = 0;
  int v = 1;

  int vec_rows() const { return rows / v; }
};

using CvsDevice = CvsDeviceT<half_t>;

CvsDevice to_device(gpusim::Device& dev, const Cvs& m);

/// Upload a CVS pattern with values widened to float (the
/// single-precision baselines operate on the same pattern).
CvsDeviceT<float> to_device_f32(gpusim::Device& dev, const Cvs& m);

}  // namespace vsparse

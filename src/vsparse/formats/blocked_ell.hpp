// Blocked-ELL — the format behind cuSPARSE's TCU SpMM baseline (§3.2).
//
// The matrix is a grid of b x b blocks; every block-row stores the same
// number of nonzero blocks (ELL padding), identified by a dense 2-D
// column-index array.  Values are stored block-row-major, each block
// row-major internally.  A column index of -1 marks an ELL padding slot
// (all-zero block), matching cuSPARSE semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/fp16/half.hpp"
#include "vsparse/formats/dense.hpp"

namespace vsparse {

struct BlockedEll {
  int rows = 0;        ///< M, multiple of block
  int cols = 0;        ///< K, multiple of block
  int block = 4;       ///< block edge length b
  int blocks_per_row = 0;  ///< nonzero blocks stored per block-row
  /// Column-block index of slot (block_row, slot): size
  /// (rows/block) * blocks_per_row, -1 = padding.
  std::vector<std::int32_t> col_idx;
  /// Values: [block_row][slot][r][c] flattened, b*b halves per slot.
  std::vector<half_t> values;

  int block_rows() const { return rows / block; }
  std::int64_t stored_blocks() const {
    return static_cast<std::int64_t>(block_rows()) * blocks_per_row;
  }

  /// Fraction of zeros implied by the stored-block count (padding slots
  /// count as zeros).
  double sparsity() const;

  void validate() const;

  /// Index into `values` of element (r, c) inside slot `slot` of block
  /// row `brow`.
  std::size_t value_index(int brow, int slot, int r, int c) const {
    return ((static_cast<std::size_t>(brow) *
                 static_cast<std::size_t>(blocks_per_row) +
             static_cast<std::size_t>(slot)) *
                static_cast<std::size_t>(block) +
            static_cast<std::size_t>(r)) *
               static_cast<std::size_t>(block) +
           static_cast<std::size_t>(c);
  }

  DenseMatrix<half_t> to_dense() const;

  /// Encode a dense matrix: every b x b block with at least one nonzero
  /// becomes a stored block; blocks_per_row is the max over block-rows
  /// (shorter rows are -1-padded, ELL-style).  Inverse of to_dense().
  static BlockedEll from_dense(const DenseMatrix<half_t>& m, int block);
};

/// Device mirror.
struct BlockedEllDevice {
  gpusim::Buffer<std::int32_t> col_idx;
  gpusim::Buffer<half_t> values;
  int rows = 0;
  int cols = 0;
  int block = 4;
  int blocks_per_row = 0;
};

BlockedEllDevice to_device(gpusim::Device& dev, const BlockedEll& m);

}  // namespace vsparse

// Benchmark scale selection shared by every table/figure binary.
//
// `small` (the default) shrinks problem sizes ~2x per dimension so the
// full bench suite completes in minutes on one CPU core; `paper` runs
// the exact sizes of the paper's evaluation.  Selected via
// `--scale=small|paper` or the VSPARSE_BENCH_SCALE environment
// variable; every bench prints the scale it used.
#pragma once

#include <cstdint>
#include <string>

namespace vsparse::bench {

enum class Scale : std::uint8_t { kSmall, kPaper };

/// Parse --scale= from argv (falling back to VSPARSE_BENCH_SCALE, then
/// kSmall) and echo the choice to stdout.
Scale parse_scale(int argc, char** argv);

const char* scale_name(Scale s);

}  // namespace vsparse::bench

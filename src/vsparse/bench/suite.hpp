// The synthetic DLMC-like benchmark suite (§7.1.1 substitution — see
// DESIGN.md): ResNet-50 weight-matrix shapes under magnitude-pruning-
// like row imbalance, at the paper's sparsity grid.
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/bench/scale.hpp"
#include "vsparse/common/rng.hpp"
#include "vsparse/formats/blocked_ell.hpp"
#include "vsparse/formats/cvs.hpp"

namespace vsparse::bench {

struct Shape {
  int m;
  int k;
};

/// The paper's sparsity grid {0.5, 0.7, 0.8, 0.9, 0.95, 0.98}.
const std::vector<double>& sparsity_grid();

/// ResNet-50-like weight shapes: full size at paper scale, halved
/// dimensions at small scale.
std::vector<Shape> suite_shapes(Scale scale);

/// Deterministic seed for a benchmark instance, so every kernel sees
/// the identical matrix.
std::uint64_t bench_seed(Shape shape, double sparsity, int v);

/// §7.1.1 construction: CVS benchmark matrix for the instance.
Cvs make_suite_cvs(Shape shape, double sparsity, int v);

/// §7.1.1 construction: the Blocked-ELL twin with block = V, same
/// sparsity and problem size.
BlockedEll make_suite_blocked_ell(Shape shape, double sparsity, int block);

}  // namespace vsparse::bench

// Shared execution plumbing for the figure/table benches: a fresh
// simulated device per kernel run (so cache state and the memory arena
// are independent across measurements) and memoized dense-GEMM
// baselines (each distinct (M,K,N) is simulated once; the paper's
// speedups all normalize to cublasHgemm/Sgemm).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "vsparse/gpusim/costmodel.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/sanitizer/report.hpp"
#include "vsparse/gpusim/trace/trace.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::bench {

/// A device sized for bench problems.
gpusim::Device fresh_device(std::size_t dram_bytes = std::size_t{1} << 30);

/// A bench device with a host execution policy baked in: every launch
/// on the returned device defaults to `sim.threads` workers.
gpusim::Device fresh_device(const gpusim::SimOptions& sim,
                            std::size_t dram_bytes = std::size_t{1} << 30);

/// A bench device on an explicit architecture (gpusim/arch.hpp preset
/// or hand-modified config) with the execution policy baked in.
gpusim::Device fresh_device(const gpusim::SimOptions& sim,
                            const gpusim::DeviceConfig& hw,
                            std::size_t dram_bytes = std::size_t{1} << 30);

/// The simulated architecture for a bench driver: `--arch=NAME` looks
/// up the named preset table (gpusim/arch.hpp); no flag returns the
/// paper's volta-v100, keeping default driver output byte-identical.
/// `--arch=help` lists the table and exits; an unknown name is a usage
/// error (exit 2).  A comma list resolves to its first entry (the
/// cross-architecture drivers read the full list via parse_arch_list).
gpusim::DeviceConfig parse_arch(int argc, char** argv);

/// Multi-architecture form for comparison drivers: `--arch=A,B,...`
/// resolves every name against the preset table; without the flag the
/// driver's `defaults` comma list is used.
std::vector<gpusim::DeviceConfig> parse_arch_list(int argc, char** argv,
                                                  const char* defaults);

/// Whether an explicit --arch=NAME flag was passed (drivers echo a
/// `# arch:` line only then).
bool arch_flag_present(int argc, char** argv);

/// Host thread count for the simulator, shared by every bench driver.
/// Sources, in priority order: a `--threads=N` argument, the
/// VSPARSE_SIM_THREADS environment variable, default 1 (the serial,
/// historically bit-exact engine).  N <= 0 requests one worker per
/// hardware thread.  The returned value is always >= 1.
int parse_threads(int argc, char** argv);

/// Where parse_threads got its answer from: "flag" (--threads=N),
/// "env" (VSPARSE_SIM_THREADS), or "default".  Recorded in the
/// throughput JSON so trajectory entries carry their provenance.
const char* threads_source(int argc, char** argv);

/// --static-verify support: run the static launch verifier over the
/// full kernel registry (plus the dense GEMM / softmax extra
/// contracts) against the builtin shape classes on one architecture.
/// Prints one machine-readable summary line
///
///   # static-verify: {"arch":"volta-v100","proved":84,"refuted":0,
///                     "unknown":0}
///
/// plus one stderr line per refutation (with the concrete
/// counterexample shape).  Returns the number of refuted verdicts; a
/// driver should fail (exit 1) when it is non-zero.  Without the flag
/// nothing runs and stdout is untouched.
int run_static_verify(const gpusim::DeviceConfig& hw);

/// Whether --static-verify was passed.
bool static_verify_flag_present(int argc, char** argv);

/// Run one bench case body under an error boundary.  A throwing case
/// does not abort the suite: the failure is reported as one
/// machine-readable line on stdout and the driver keeps going with the
/// remaining cases.  A classified vsparse::Error (the serve taxonomy —
/// EccError, LaunchTimeoutError, malformed formats, alloc failures,
/// bad dispatches) carries its machine-readable fields:
///
///   # case-error: {"case":"fig17 v=2 n=64 ...","error":"...",
///                  "code":"ecc_uncorrectable","site":"gpusim.ecc",
///                  "retryable":true}
///
/// while an unclassified exception reports the legacy two-field form.
/// Returns true iff the body completed.  Successful cases print
/// nothing, so a fully clean run's output is byte-identical to the
/// pre-boundary drivers.
bool run_case(const std::string& name, const std::function<void()>& fn);

/// Process exit code for a bench driver: 0 if every run_case body
/// completed, 1 if any case failed.  Resets nothing; call once at the
/// end of main().
int bench_exit_code();

/// Launch tracing for a bench driver, driven by command-line flags:
///
///   --trace=PREFIX     enable tracing; at exit write
///                      PREFIX.perfetto.json and PREFIX.metrics.json
///   --trace-sample=N   additionally record every Nth warp-level
///                      instruction as a warp_op event (default 0: off)
///
/// Without --trace the session is inert: options() returns a disabled
/// TraceOptions (null sink) and nothing is written or printed, so a
/// driver's stdout is byte-identical to the pre-trace build.  With
/// --trace, finish() (also called from the destructor) writes both
/// export files once and prints a one-line `# trace: ...` note.
class TraceSession {
 public:
  TraceSession(int argc, char** argv);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool enabled() const { return !prefix_.empty(); }

  /// TraceOptions to install in a SimOptions (and, through
  /// fresh_device, in the device defaults every launch inherits).
  gpusim::TraceOptions options();

  /// Write the exports now (idempotent).  Returns true if the files
  /// were written successfully or tracing is disabled.
  bool finish();

  gpusim::Trace& trace() { return trace_; }

 private:
  std::string prefix_;
  std::uint64_t sample_ops_ = 0;
  bool written_ = false;
  gpusim::Trace trace_;
};

/// Kernel hazard analysis for a bench driver, driven by command-line
/// flags:
///
///   --sanitize[=LIST]       enable the sanitizer; LIST is a comma
///                           list of tools (race,sync,init,bounds;
///                           "all" or a bare --sanitize = everything)
///   --sanitize-report=FILE  at exit write the vsparse-sanitizer-v1
///                           JSON report to FILE
///
/// Without --sanitize the session is inert: options() returns a
/// disabled SanitizerOptions (null sink) and nothing is printed, so a
/// driver's stdout is byte-identical to the pre-sanitizer build.  With
/// it, finish() (also called from the destructor) prints a one-line
/// `# sanitizer: ...` summary and writes the report file if requested.
class SanitizerSession {
 public:
  SanitizerSession(int argc, char** argv);
  ~SanitizerSession();
  SanitizerSession(const SanitizerSession&) = delete;
  SanitizerSession& operator=(const SanitizerSession&) = delete;

  bool enabled() const { return enabled_; }

  /// SanitizerOptions to install in a SimOptions (and, through
  /// fresh_device, in the device defaults every launch inherits).
  gpusim::SanitizerOptions options();

  /// Print the summary / write the report now (idempotent).  Returns
  /// true if the report file (when requested) was written successfully
  /// or sanitizing is disabled.
  bool finish();

  gpusim::Sanitizer& sanitizer() { return sink_; }

 private:
  bool enabled_ = false;
  gpusim::SanitizerOptions opts_;
  std::string report_path_;
  bool finished_ = false;
  gpusim::Sanitizer sink_;
};

/// Wall-clock throughput of the simulator itself (how fast the host
/// simulates, not how fast the modeled GPU would run).  Snapshot at
/// construction, then print_summary() emits one JSON line:
///
///   # throughput: {"sim_ctas":123,"wall_seconds":4.5,
///                  "ctas_per_sec":27.3,"threads":8,
///                  "threads_source":"flag","host_cores":4}
///
/// `threads_source` says where the worker count came from (flag, env,
/// or default) and `host_cores` is the machine's hardware concurrency —
/// together they let trajectory readers judge whether two entries'
/// wall-clock numbers are comparable.
class SimThroughput {
 public:
  explicit SimThroughput(int threads, const char* source = "default");

  /// Print the summary JSON line to stdout.
  void print_summary() const;

 private:
  int threads_;
  const char* source_;
  std::uint64_t start_ctas_;
  std::chrono::steady_clock::time_point start_;
};

/// The shared per-driver session every figure/table bench opens first:
/// one declaration wires up the common command-line surface
///
///   --threads=N             host simulation threads (parse_threads)
///   --arch=NAME             architecture preset (parse_arch); all
///                           devices and cost evaluations the driver
///                           builds through the session use it
///   --trace=PREFIX          Perfetto/metrics launch tracing
///   --trace-sample=N        sampled warp-op events
///   --sanitize[=LIST]       kernel hazard analysis (SanitizerSession)
///   --sanitize-report=FILE  vsparse-sanitizer-v1 JSON export
///   --static-verify         prove the kernel registry safe on this
///                           session's architecture before any case
///                           runs (run_static_verify); a refuted
///                           kernel makes finish() return 1
///
/// and the standard epilogue.  Usage:
///
///   DriverSession session(argc, argv);
///   const gpusim::SimOptions& sim = session.sim();
///   ...
///   return session.finish();   // throughput line, trace exports,
///                              // sanitizer summary, bench_exit_code()
///
/// finish() emits in the exact order the hand-rolled drivers did
/// (throughput summary, then the `# trace:` note, then the
/// `# sanitizer:` summary), so converting a driver leaves its clean-run
/// stdout byte-identical.  An explicit --arch=NAME additionally prints
/// one `# arch: NAME` line up front (no flag, no line).
class DriverSession {
 public:
  DriverSession(int argc, char** argv)
      : trace_(argc, argv),
        sanitize_(argc, argv),
        sim_{.threads = parse_threads(argc, argv),
             .trace = trace_.options(),
             .sanitize = sanitize_.options()},
        throughput_(sim_.threads, threads_source(argc, argv)),
        hw_(parse_arch(argc, argv)) {
    if (arch_flag_present(argc, argv)) announce_arch();
    if (static_verify_flag_present(argc, argv)) {
      static_refuted_ = run_static_verify(hw_);
    }
  }

  /// SimOptions with threads, tracing, and sanitizing installed; pass
  /// to kernels or fresh_device so every launch inherits them.
  const gpusim::SimOptions& sim() const { return sim_; }
  int threads() const { return sim_.threads; }
  TraceSession& trace() { return trace_; }
  SanitizerSession& sanitize() { return sanitize_; }

  /// The simulated architecture (--arch preset; volta-v100 default).
  const gpusim::DeviceConfig& hw() const { return hw_; }
  const char* arch() const { return hw_.arch; }

  /// A fresh device on this session's architecture with its SimOptions
  /// installed — what most figure drivers should build per case.
  gpusim::Device device(std::size_t dram_bytes = std::size_t{1} << 30) const {
    return fresh_device(sim_, hw_, dram_bytes);
  }

  /// Standard driver epilogue; returns the process exit code.
  int finish() {
    throughput_.print_summary();
    trace_.finish();
    sanitize_.finish();
    const int code = bench_exit_code();
    return static_refuted_ > 0 ? 1 : code;
  }

 private:
  void announce_arch() const;

  TraceSession trace_;
  SanitizerSession sanitize_;
  gpusim::SimOptions sim_;
  SimThroughput throughput_;
  gpusim::DeviceConfig hw_;
  int static_refuted_ = 0;
};

/// Memoized dense baselines evaluated under one hardware model.
class DenseBaseline {
 public:
  explicit DenseBaseline(
      gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100(),
      gpusim::CostParams params = {}, gpusim::SimOptions sim = {})
      : hw_(hw), params_(params), sim_(sim) {}

  /// Model cycles of the cublasHgemm stand-in on (MxK)·(KxN).
  double hgemm_cycles(int m, int k, int n);
  /// Model cycles of the cublasSgemm stand-in.
  double sgemm_cycles(int m, int k, int n);

  const gpusim::DeviceConfig& hw() const { return hw_; }
  const gpusim::CostParams& params() const { return params_; }

 private:
  gpusim::DeviceConfig hw_;
  gpusim::CostParams params_;
  gpusim::SimOptions sim_;
  std::map<std::tuple<int, int, int>, double> half_;
  std::map<std::tuple<int, int, int>, double> single_;
};

}  // namespace vsparse::bench

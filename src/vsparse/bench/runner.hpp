// Shared execution plumbing for the figure/table benches: a fresh
// simulated device per kernel run (so cache state and the memory arena
// are independent across measurements) and memoized dense-GEMM
// baselines (each distinct (M,K,N) is simulated once; the paper's
// speedups all normalize to cublasHgemm/Sgemm).
#pragma once

#include <map>
#include <tuple>

#include "vsparse/gpusim/costmodel.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::bench {

/// A device sized for bench problems.
gpusim::Device fresh_device(std::size_t dram_bytes = std::size_t{1} << 30);

/// Memoized dense baselines evaluated under one hardware model.
class DenseBaseline {
 public:
  explicit DenseBaseline(
      gpusim::DeviceConfig hw = gpusim::DeviceConfig::volta_v100(),
      gpusim::CostParams params = {})
      : hw_(hw), params_(params) {}

  /// Model cycles of the cublasHgemm stand-in on (MxK)·(KxN).
  double hgemm_cycles(int m, int k, int n);
  /// Model cycles of the cublasSgemm stand-in.
  double sgemm_cycles(int m, int k, int n);

  const gpusim::DeviceConfig& hw() const { return hw_; }
  const gpusim::CostParams& params() const { return params_; }

 private:
  gpusim::DeviceConfig hw_;
  gpusim::CostParams params_;
  std::map<std::tuple<int, int, int>, double> half_;
  std::map<std::tuple<int, int, int>, double> single_;
};

}  // namespace vsparse::bench

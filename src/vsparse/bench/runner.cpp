#include "vsparse/bench/runner.hpp"

#include "vsparse/formats/dense.hpp"
#include "vsparse/kernels/dense/gemm.hpp"

namespace vsparse::bench {

gpusim::Device fresh_device(std::size_t dram_bytes) {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::volta_v100();
  cfg.dram_capacity = dram_bytes;
  return gpusim::Device(cfg);
}

double DenseBaseline::hgemm_cycles(int m, int k, int n) {
  const auto key = std::make_tuple(m, k, n);
  if (auto it = half_.find(key); it != half_.end()) return it->second;
  gpusim::Device dev = fresh_device();
  auto a = dev.alloc<half_t>(static_cast<std::size_t>(m) * k);
  auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
  auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
  DenseDevice<half_t> da{a, m, k, k, Layout::kRowMajor};
  DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
  DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
  const double cycles =
      kernels::hgemm_tcu(dev, da, db, dc).cycles(hw_, params_);
  half_.emplace(key, cycles);
  return cycles;
}

double DenseBaseline::sgemm_cycles(int m, int k, int n) {
  const auto key = std::make_tuple(m, k, n);
  if (auto it = single_.find(key); it != single_.end()) return it->second;
  gpusim::Device dev = fresh_device();
  auto a = dev.alloc<float>(static_cast<std::size_t>(m) * k);
  auto b = dev.alloc<float>(static_cast<std::size_t>(k) * n);
  auto c = dev.alloc<float>(static_cast<std::size_t>(m) * n);
  DenseDevice<float> da{a, m, k, k, Layout::kRowMajor};
  DenseDevice<float> db{b, k, n, n, Layout::kRowMajor};
  DenseDevice<float> dc{c, m, n, n, Layout::kRowMajor};
  const double cycles =
      kernels::sgemm_fpu(dev, da, db, dc).cycles(hw_, params_);
  single_.emplace(key, cycles);
  return cycles;
}

}  // namespace vsparse::bench

#include "vsparse/bench/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#include "vsparse/common/env.hpp"
#include "vsparse/common/macros.hpp"
#include "vsparse/formats/dense.hpp"
#include "vsparse/gpusim/arch.hpp"
#include "vsparse/gpusim/engine/engine.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/trace/export.hpp"
#include "vsparse/gpusim/verify/verifier.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/registry.hpp"

namespace vsparse::bench {

gpusim::Device fresh_device(std::size_t dram_bytes) {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::volta_v100();
  cfg.dram_capacity = dram_bytes;
  return gpusim::Device(cfg);
}

gpusim::Device fresh_device(const gpusim::SimOptions& sim,
                            std::size_t dram_bytes) {
  gpusim::Device dev = fresh_device(dram_bytes);
  dev.set_sim_options(sim);
  return dev;
}

gpusim::Device fresh_device(const gpusim::SimOptions& sim,
                            const gpusim::DeviceConfig& hw,
                            std::size_t dram_bytes) {
  gpusim::DeviceConfig cfg = hw;
  cfg.dram_capacity = dram_bytes;
  gpusim::Device dev(cfg);
  dev.set_sim_options(sim);
  return dev;
}

bool arch_flag_present(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--arch=", 7) == 0) return true;
  }
  return false;
}

bool static_verify_flag_present(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--static-verify") == 0) return true;
  }
  return false;
}

int run_static_verify(const gpusim::DeviceConfig& hw) {
  int proved = 0, refuted = 0, unknown = 0;
  const auto verify_one = [&](const char* name,
                              kernels::ContractFn contract) {
    for (const verify::ShapeClass& cls : verify::builtin_shape_classes()) {
      const verify::Verdict v = verify::verify_kernel(contract, cls, hw);
      switch (v.kind) {
        case verify::VerdictKind::kProved:
          ++proved;
          break;
        case verify::VerdictKind::kRefuted:
          ++refuted;
          std::fprintf(stderr,
                       "# static-verify: REFUTED %s over %s at %s: %s "
                       "(counterexample %s)\n",
                       name, cls.name.c_str(), v.site.c_str(),
                       v.detail.c_str(), v.counterexample.str().c_str());
          break;
        case verify::VerdictKind::kUnknown:
          ++unknown;
          break;
      }
    }
  };
  for (const kernels::KernelDesc& desc : kernels::kernel_registry()) {
    verify_one(desc.name, desc.contract);
  }
  for (const verify::ExtraContract& extra : verify::extra_contracts()) {
    if (kernels::find_kernel(extra.name) == nullptr) {
      verify_one(extra.name, extra.contract);
    }
  }
  std::printf(
      "# static-verify: {\"arch\":\"%s\",\"proved\":%d,\"refuted\":%d,"
      "\"unknown\":%d}\n",
      hw.arch, proved, refuted, unknown);
  std::fflush(stdout);
  return refuted;
}

namespace {

gpusim::DeviceConfig resolve_arch_or_exit(const std::string& name) {
  if (name == "help" || name == "list") {
    std::fprintf(stderr, "architecture presets:\n");
    for (const gpusim::ArchPreset& preset : gpusim::arch_presets()) {
      std::fprintf(stderr, "  %-18s %s\n", preset.name, preset.summary);
    }
    std::exit(2);
  }
  const gpusim::ArchPreset* preset = gpusim::find_arch_preset(name.c_str());
  if (preset == nullptr) {
    std::fprintf(stderr, "unknown --arch=%s (known: %s)\n", name.c_str(),
                 gpusim::arch_preset_names().c_str());
    std::exit(2);
  }
  return preset->make();
}

std::vector<gpusim::DeviceConfig> resolve_arch_csv(const char* list) {
  std::vector<gpusim::DeviceConfig> out;
  const std::string s(list);
  std::size_t pos = 0;
  while (true) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(resolve_arch_or_exit(s.substr(pos, comma - pos)));
    if (comma == s.size()) break;
    pos = comma + 1;
  }
  return out;
}

const char* arch_flag_value(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--arch=", 7) == 0) return argv[i] + 7;
  }
  return nullptr;
}

}  // namespace

gpusim::DeviceConfig parse_arch(int argc, char** argv) {
  if (const char* value = arch_flag_value(argc, argv)) {
    return resolve_arch_csv(value).front();
  }
  return gpusim::DeviceConfig::volta_v100();
}

std::vector<gpusim::DeviceConfig> parse_arch_list(int argc, char** argv,
                                                  const char* defaults) {
  const char* value = arch_flag_value(argc, argv);
  return resolve_arch_csv(value != nullptr ? value : defaults);
}

void DriverSession::announce_arch() const {
  std::printf("# arch: %s\n", hw_.arch);
  std::fflush(stdout);
}

namespace {

bool g_any_case_failed = false;

/// Minimal JSON string escaping for the case-error records.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void report_case_error(const std::string& name, const std::string& what) {
  std::printf("# case-error: {\"case\":\"%s\",\"error\":\"%s\"}\n",
              json_escape(name).c_str(), json_escape(what).c_str());
  std::fflush(stdout);
  g_any_case_failed = true;
}

/// Classified failures carry their taxonomy fields so a harness can
/// triage a suite run without parsing free-text messages.
void report_case_error(const std::string& name, const Error& e) {
  std::printf(
      "# case-error: {\"case\":\"%s\",\"error\":\"%s\",\"code\":\"%s\","
      "\"site\":\"%s\",\"retryable\":%s}\n",
      json_escape(name).c_str(), json_escape(e.what()).c_str(),
      error_code_name(e.code()), json_escape(e.site()).c_str(),
      e.retryable() ? "true" : "false");
  std::fflush(stdout);
  g_any_case_failed = true;
}

int clamp_threads(long n) {
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  return static_cast<int>(n);
}

}  // namespace

bool run_case(const std::string& name, const std::function<void()>& fn) {
  try {
    fn();
    return true;
  } catch (const Error& e) {
    // The whole classified taxonomy — EccError, LaunchTimeoutError,
    // malformed formats, alloc overflow/exhaustion, bad dispatches.
    report_case_error(name, e);
  } catch (const std::exception& e) {
    report_case_error(name, std::string(e.what()));
  }
  return false;
}

int bench_exit_code() { return g_any_case_failed ? 1 : 0; }

int parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return clamp_threads(std::strtol(argv[i] + 10, nullptr, 10));
    }
  }
  if (const char* env = env_get("VSPARSE_SIM_THREADS")) {
    if (*env != '\0') return clamp_threads(std::strtol(env, nullptr, 10));
  }
  return 1;
}

const char* threads_source(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) return "flag";
  }
  if (const char* env = env_get("VSPARSE_SIM_THREADS")) {
    if (*env != '\0') return "env";
  }
  return "default";
}

TraceSession::TraceSession(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      prefix_ = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      const long long n = std::strtoll(argv[i] + 15, nullptr, 10);
      sample_ops_ = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    }
  }
}

TraceSession::~TraceSession() { finish(); }

gpusim::TraceOptions TraceSession::options() {
  gpusim::TraceOptions opts;
  if (enabled()) {
    opts.sink = &trace_;
    opts.sample_ops = sample_ops_;
  }
  return opts;
}

bool TraceSession::finish() {
  if (!enabled() || written_) return true;
  written_ = true;
  const bool ok = gpusim::write_trace_files(trace_, prefix_);
  if (ok) {
    std::printf("# trace: wrote %s.perfetto.json and %s.metrics.json "
                "(%zu launches, %zu events)\n",
                prefix_.c_str(), prefix_.c_str(), trace_.launches().size(),
                trace_.num_events());
  } else {
    std::printf("# trace: FAILED to write exports under prefix %s\n",
                prefix_.c_str());
  }
  std::fflush(stdout);
  return ok;
}

SanitizerSession::SanitizerSession(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sanitize") == 0) {
      enabled_ = true;  // bare flag: all tools
    } else if (std::strncmp(argv[i], "--sanitize=", 11) == 0) {
      enabled_ = true;
      if (!gpusim::parse_sanitizer_tools(argv[i] + 11, &opts_)) {
        std::fprintf(stderr,
                     "unknown tool in %s (expected a comma list of "
                     "race,sync,init,bounds or \"all\")\n",
                     argv[i]);
        std::exit(2);
      }
    } else if (std::strncmp(argv[i], "--sanitize-report=", 18) == 0) {
      report_path_ = argv[i] + 18;
    }
  }
}

SanitizerSession::~SanitizerSession() { finish(); }

gpusim::SanitizerOptions SanitizerSession::options() {
  gpusim::SanitizerOptions opts = opts_;
  opts.sink = enabled_ ? &sink_ : nullptr;
  return opts;
}

bool SanitizerSession::finish() {
  if (!enabled_ || finished_) return true;
  finished_ = true;
  std::uint64_t suppressed = 0;
  for (const gpusim::LaunchSanitizerRecord& launch : sink_.launches()) {
    suppressed += launch.suppressed;
  }
  std::printf(
      "# sanitizer: {\"launches\":%llu,\"reports\":%llu,\"suppressed\":%llu,"
      "\"race\":%llu,\"sync\":%llu,\"init\":%llu,\"bounds\":%llu}\n",
      static_cast<unsigned long long>(sink_.num_launches()),
      static_cast<unsigned long long>(sink_.num_reports()),
      static_cast<unsigned long long>(suppressed),
      static_cast<unsigned long long>(
          sink_.num_reports(gpusim::SanitizerTool::kRace)),
      static_cast<unsigned long long>(
          sink_.num_reports(gpusim::SanitizerTool::kSync)),
      static_cast<unsigned long long>(
          sink_.num_reports(gpusim::SanitizerTool::kInit)),
      static_cast<unsigned long long>(
          sink_.num_reports(gpusim::SanitizerTool::kBounds)));
  bool ok = true;
  if (!report_path_.empty()) {
    ok = gpusim::write_sanitizer_report(sink_, report_path_);
    std::printf(ok ? "# sanitizer: wrote %s\n"
                   : "# sanitizer: FAILED to write %s\n",
                report_path_.c_str());
  }
  std::fflush(stdout);
  return ok;
}

SimThroughput::SimThroughput(int threads, const char* source)
    : threads_(threads),
      source_(source),
      start_ctas_(gpusim::total_simulated_ctas()),
      start_(std::chrono::steady_clock::now()) {}

void SimThroughput::print_summary() const {
  const std::uint64_t ctas = gpusim::total_simulated_ctas() - start_ctas_;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = secs > 0.0 ? static_cast<double>(ctas) / secs : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "# throughput: {\"sim_ctas\":%llu,\"wall_seconds\":%.3f,"
      "\"ctas_per_sec\":%.1f,\"threads\":%d,"
      "\"threads_source\":\"%s\",\"host_cores\":%u}\n",
      static_cast<unsigned long long>(ctas), secs, rate, threads_, source_,
      cores);
}

double DenseBaseline::hgemm_cycles(int m, int k, int n) {
  const auto key = std::make_tuple(m, k, n);
  if (auto it = half_.find(key); it != half_.end()) return it->second;
  gpusim::Device dev = fresh_device(sim_);
  auto a = dev.alloc<half_t>(static_cast<std::size_t>(m) * k);
  auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
  auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
  DenseDevice<half_t> da{a, m, k, k, Layout::kRowMajor};
  DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
  DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
  const double cycles =
      kernels::hgemm_tcu(dev, da, db, dc).cycles(hw_, params_);
  half_.emplace(key, cycles);
  return cycles;
}

double DenseBaseline::sgemm_cycles(int m, int k, int n) {
  const auto key = std::make_tuple(m, k, n);
  if (auto it = single_.find(key); it != single_.end()) return it->second;
  gpusim::Device dev = fresh_device(sim_);
  auto a = dev.alloc<float>(static_cast<std::size_t>(m) * k);
  auto b = dev.alloc<float>(static_cast<std::size_t>(k) * n);
  auto c = dev.alloc<float>(static_cast<std::size_t>(m) * n);
  DenseDevice<float> da{a, m, k, k, Layout::kRowMajor};
  DenseDevice<float> db{b, k, n, n, Layout::kRowMajor};
  DenseDevice<float> dc{c, m, n, n, Layout::kRowMajor};
  const double cycles =
      kernels::sgemm_fpu(dev, da, db, dc).cycles(hw_, params_);
  single_.emplace(key, cycles);
  return cycles;
}

}  // namespace vsparse::bench

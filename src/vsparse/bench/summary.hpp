// Aggregation helpers for the figure benches: geometric-mean speedups
// (the paper's solid lines) and box-plot quartiles (its distributions).
#pragma once

#include <string>
#include <vector>

namespace vsparse::bench {

struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double geomean = 0;
  int count = 0;
};

/// Quartiles + geometric mean of a sample of (positive) speedups.
BoxStats summarize(std::vector<double> samples);

/// "1.23 [0.9,1.1,1.4] n=12"-style compact rendering.
std::string to_string(const BoxStats& s);

/// Geometric mean of positive samples (0 if empty).
double geomean(const std::vector<double>& samples);

}  // namespace vsparse::bench

#include "vsparse/bench/scale.hpp"

#include "vsparse/common/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vsparse::bench {

Scale parse_scale(int argc, char** argv) {
  std::string choice;
  if (const char* env = env_get("VSPARSE_BENCH_SCALE")) choice = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) choice = argv[i] + 8;
  }
  Scale s = Scale::kSmall;
  if (choice == "paper") {
    s = Scale::kPaper;
  } else if (!choice.empty() && choice != "small") {
    std::fprintf(stderr, "unknown scale '%s' (want small|paper); using small\n",
                 choice.c_str());
  }
  std::printf("# scale: %s (override with --scale=paper or "
              "VSPARSE_BENCH_SCALE=paper)\n",
              scale_name(s));
  return s;
}

const char* scale_name(Scale s) {
  return s == Scale::kPaper ? "paper" : "small";
}

}  // namespace vsparse::bench

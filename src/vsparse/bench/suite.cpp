#include "vsparse/bench/suite.hpp"

#include "vsparse/formats/generate.hpp"

namespace vsparse::bench {

const std::vector<double>& sparsity_grid() {
  static const std::vector<double> grid = {0.5, 0.7, 0.8, 0.9, 0.95, 0.98};
  return grid;
}

std::vector<Shape> suite_shapes(Scale scale) {
  if (scale == Scale::kPaper) {
    // ResNet-50 1x1/3x3 weight GEMM shapes as used by DLMC.
    return {{256, 256},  {512, 256},  {512, 512},  {1024, 512},
            {1024, 1024}, {2048, 1024}, {512, 2048}, {2048, 512}};
  }
  // Fewer shapes, but realistic sizes: cache-resident toy shapes would
  // distort the speedup crossovers the figures are about.
  return {{512, 256}, {512, 512}, {1024, 512}};
}

std::uint64_t bench_seed(Shape shape, double sparsity, int v) {
  return 0x5eedull ^ (static_cast<std::uint64_t>(shape.m) << 32) ^
         (static_cast<std::uint64_t>(shape.k) << 16) ^
         (static_cast<std::uint64_t>(sparsity * 1000) << 4) ^
         static_cast<std::uint64_t>(v);
}

Cvs make_suite_cvs(Shape shape, double sparsity, int v) {
  Rng rng(bench_seed(shape, sparsity, v));
  return make_cvs(shape.m, shape.k, v, sparsity, rng, /*row_jitter=*/0.25);
}

BlockedEll make_suite_blocked_ell(Shape shape, double sparsity, int block) {
  Rng rng(bench_seed(shape, sparsity, block) + 1);
  return make_blocked_ell(shape.m, shape.k, block, sparsity, rng);
}

}  // namespace vsparse::bench

#include "vsparse/bench/summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "vsparse/common/macros.hpp"

namespace vsparse::bench {

namespace {

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * (static_cast<double>(sorted.size()) - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

double geomean(const std::vector<double>& samples) {
  if (samples.empty()) return 0;
  double log_sum = 0;
  for (double s : samples) {
    VSPARSE_CHECK(s > 0);
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

BoxStats summarize(std::vector<double> samples) {
  BoxStats out;
  if (samples.empty()) return out;
  out.geomean = geomean(samples);
  std::sort(samples.begin(), samples.end());
  out.min = samples.front();
  out.max = samples.back();
  out.q1 = quantile(samples, 0.25);
  out.median = quantile(samples, 0.5);
  out.q3 = quantile(samples, 0.75);
  out.count = static_cast<int>(samples.size());
  return out;
}

std::string to_string(const BoxStats& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%6.2f  [%5.2f %5.2f %5.2f %5.2f %5.2f] n=%d",
                s.geomean, s.min, s.q1, s.median, s.q3, s.max, s.count);
  return buf;
}

}  // namespace vsparse::bench

// Structured export of kernel measurements: JSON records and CSV rows
// for downstream tooling (plotting the reproduced figures, regression
// tracking).  Used by the bench binaries behind --csv/--json flags and
// available to library users directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "vsparse/gpusim/costmodel.hpp"
#include "vsparse/kernels/api.hpp"

namespace vsparse::report {

/// One measured data point: a kernel run plus the experiment coordinates
/// it belongs to (free-form key=value labels like v=4, sparsity=0.9).
struct Record {
  std::string kernel;
  std::vector<std::pair<std::string, std::string>> labels;
  gpusim::KernelStats stats;
  gpusim::CostEstimate cost;
};

/// Build a record from a KernelRun under a hardware model.
Record make_record(const kernels::KernelRun& run,
                   const gpusim::DeviceConfig& hw,
                   std::vector<std::pair<std::string, std::string>> labels);

/// Serialize one record as a single-line JSON object.
std::string to_json(const Record& r);

/// CSV header matching to_csv_row's columns (labels flattened into a
/// single "labels" column as k=v;k=v).
std::string csv_header();
std::string to_csv_row(const Record& r);

/// Write a batch in either format.
void write_json(std::ostream& os, const std::vector<Record>& records);
void write_csv(std::ostream& os, const std::vector<Record>& records);

}  // namespace vsparse::report

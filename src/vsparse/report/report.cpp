#include "vsparse/report/report.hpp"

#include <ostream>
#include <sstream>

namespace vsparse::report {

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Record make_record(const kernels::KernelRun& run,
                   const gpusim::DeviceConfig& hw,
                   std::vector<std::pair<std::string, std::string>> labels) {
  return Record{run.config.profile.name, std::move(labels), run.stats,
                run.cost(hw)};
}

std::string to_json(const Record& r) {
  std::ostringstream os;
  os << "{\"kernel\":\"" << escape_json(r.kernel) << "\"";
  for (const auto& [k, v] : r.labels) {
    os << ",\"" << escape_json(k) << "\":\"" << escape_json(v) << "\"";
  }
  os << ",\"cycles\":" << r.cost.cycles << ",\"bound_by\":\""
     << escape_json(r.cost.bound_by) << "\""
     << ",\"stall_no_instruction\":" << r.cost.stall_no_instruction
     << ",\"stall_wait\":" << r.cost.stall_wait
     << ",\"stall_short_scoreboard\":" << r.cost.stall_short_scoreboard
     << ",\"ctas_per_sm\":" << r.cost.ctas_per_sm
     << ",\"active_warps_per_sm\":" << r.cost.active_warps_per_sm
     << ",\"instructions\":" << r.stats.total_instructions()
     << ",\"hmma\":" << r.stats.op(gpusim::Op::kHmma)
     << ",\"ldg128\":" << r.stats.ldg128
     << ",\"sectors_per_request\":" << r.stats.sectors_per_request()
     << ",\"l1_sector_misses\":" << r.stats.l1_sector_misses
     << ",\"bytes_l2_to_l1\":" << r.stats.bytes_l2_to_l1()
     << ",\"dram_read_bytes\":" << r.stats.dram_read_bytes << "}";
  return os.str();
}

std::string csv_header() {
  return "kernel,labels,cycles,bound_by,stall_no_instruction,stall_wait,"
         "stall_short_scoreboard,ctas_per_sm,active_warps_per_sm,"
         "instructions,hmma,ldg128,sectors_per_request,l1_sector_misses,"
         "bytes_l2_to_l1,dram_read_bytes";
}

std::string to_csv_row(const Record& r) {
  std::ostringstream labels;
  for (std::size_t i = 0; i < r.labels.size(); ++i) {
    if (i) labels << ';';
    labels << r.labels[i].first << '=' << r.labels[i].second;
  }
  std::ostringstream os;
  os << r.kernel << ',' << labels.str() << ',' << r.cost.cycles << ','
     << r.cost.bound_by << ',' << r.cost.stall_no_instruction << ','
     << r.cost.stall_wait << ',' << r.cost.stall_short_scoreboard << ','
     << r.cost.ctas_per_sm << ',' << r.cost.active_warps_per_sm << ','
     << r.stats.total_instructions() << ',' << r.stats.op(gpusim::Op::kHmma)
     << ',' << r.stats.ldg128 << ',' << r.stats.sectors_per_request() << ','
     << r.stats.l1_sector_misses << ',' << r.stats.bytes_l2_to_l1() << ','
     << r.stats.dram_read_bytes;
  return os.str();
}

void write_json(std::ostream& os, const std::vector<Record>& records) {
  os << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    os << "  " << to_json(records[i]) << (i + 1 < records.size() ? "," : "")
       << "\n";
  }
  os << "]\n";
}

void write_csv(std::ostream& os, const std::vector<Record>& records) {
  os << csv_header() << "\n";
  for (const Record& r : records) os << to_csv_row(r) << "\n";
}

}  // namespace vsparse::report

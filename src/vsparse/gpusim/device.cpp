#include "vsparse/gpusim/device.hpp"

#include "vsparse/gpusim/faults.hpp"

namespace vsparse::gpusim {

Device::Device(DeviceConfig cfg)
    : cfg_(cfg),
      l2_(cfg.l2_bytes, cfg.line_bytes, cfg.sector_bytes, cfg.l2_ways,
          cfg.l2_slices) {
  capacity_ = cfg_.dram_capacity;
  // for_overwrite: the arena must not be value-initialized — it can be
  // gigabytes, and alloc_bytes() zeroes each allocation on demand.
  arena_ = std::make_unique_for_overwrite<std::byte[]>(capacity_);
}

std::uint64_t Device::alloc_bytes(std::size_t bytes) {
  const std::size_t aligned = round_up<std::size_t>(used_, 256);
  // Checked as two comparisons so `aligned + bytes` cannot wrap for
  // huge requests (mirrors the Device::translate guard).
  VSPARSE_CHECK_MSG(bytes <= capacity_ && aligned <= capacity_ - bytes,
                    "simulated DRAM exhausted: want "
                        << bytes << "B, used " << used_ << "B of "
                        << capacity_ << "B — call Device::reset() between "
                        << "independent experiments");
  used_ = aligned + bytes;
  std::memset(arena_.get() + aligned, 0, bytes);
  allocations_.emplace(aligned, bytes);
  live_ += bytes;
  if (live_ > peak_) peak_ = live_;
  return aligned;
}

void Device::free_bytes(std::uint64_t addr) {
  auto it = allocations_.find(addr);
  VSPARSE_CHECK_MSG(it != allocations_.end(),
                    "free of unknown device address " << addr);
  live_ -= it->second;
  allocations_.erase(it);
}

void Device::reset() {
  used_ = 0;
  live_ = 0;
  peak_ = 0;
  allocations_.clear();
  flush_all_caches();
}

void Device::flush_all_caches() {
  // L1s live in per-launch SmContexts and are born cold; the only
  // persistent cache a Device owns is the L2.
  l2_.flush();
}

void Device::set_fault_plan(FaultPlan* plan) {
  if (plan != nullptr) plan->prepare(cfg_.num_sms);
  fault_plan_ = plan;
}

}  // namespace vsparse::gpusim

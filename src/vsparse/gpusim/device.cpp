#include "vsparse/gpusim/device.hpp"

#include "vsparse/gpusim/faults.hpp"

namespace vsparse::gpusim {

Device::Device(DeviceConfig cfg)
    : cfg_(cfg),
      l2_(cfg.l2_bytes, cfg.line_bytes, cfg.sector_bytes, cfg.l2_ways,
          cfg.l2_slices) {
  capacity_ = cfg_.dram_capacity;
  // for_overwrite: the arena must not be value-initialized — it can be
  // gigabytes, and alloc_bytes() zeroes each allocation on demand.
  arena_ = std::make_unique_for_overwrite<std::byte[]>(capacity_);
}

std::uint64_t Device::alloc_bytes(std::size_t bytes) {
  std::size_t aligned;
  {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    const std::size_t used = used_.load(std::memory_order_relaxed);
    aligned = round_up<std::size_t>(used, 256);
    // Checked as two comparisons so `aligned + bytes` cannot wrap for
    // huge requests (mirrors the Device::translate guard).
    VSPARSE_CHECK_RAISE(bytes <= capacity_ && aligned <= capacity_ - bytes,
                        ErrorCode::kOutOfMemory, "gpusim.alloc",
                        "simulated DRAM exhausted: want "
                            << bytes << "B, used " << used << "B of "
                            << capacity_ << "B — call Device::reset() between "
                            << "independent experiments");
    used_.store(aligned + bytes, std::memory_order_relaxed);
    allocations_.emplace(aligned, bytes);
    const std::size_t live = live_.load(std::memory_order_relaxed) + bytes;
    live_.store(live, std::memory_order_relaxed);
    if (live > peak_.load(std::memory_order_relaxed)) {
      peak_.store(live, std::memory_order_relaxed);
    }
  }
  // Zero outside the lock: the region is already reserved, so it is
  // private to this allocation and the memset can be arbitrarily large.
  std::memset(arena_.get() + aligned, 0, bytes);
  return aligned;
}

void Device::free_bytes(std::uint64_t addr) {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  auto it = allocations_.find(addr);
  VSPARSE_CHECK_MSG(it != allocations_.end(),
                    "free of unknown device address " << addr);
  live_.fetch_sub(it->second, std::memory_order_relaxed);
  allocations_.erase(it);
}

void Device::reset() {
  {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    used_.store(0, std::memory_order_relaxed);
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    allocations_.clear();
  }
  flush_all_caches();
}

void Device::flush_all_caches() {
  // L1s live in per-launch SmContexts and are born cold; the only
  // persistent cache a Device owns is the L2.
  l2_.flush();
}

void Device::set_fault_plan(FaultPlan* plan) {
  if (plan != nullptr) plan->prepare(cfg_.num_sms);
  fault_plan_ = plan;
}

}  // namespace vsparse::gpusim

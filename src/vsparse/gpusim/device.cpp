#include "vsparse/gpusim/device.hpp"

namespace vsparse::gpusim {

Device::Device(DeviceConfig cfg)
    : cfg_(cfg),
      l2_(cfg.l2_bytes, cfg.line_bytes, cfg.sector_bytes, cfg.l2_ways) {
  capacity_ = cfg_.dram_capacity;
  // for_overwrite: the arena must not be value-initialized — it can be
  // gigabytes, and alloc_bytes() zeroes each allocation on demand.
  arena_ = std::make_unique_for_overwrite<std::byte[]>(capacity_);
  l1_.reserve(static_cast<std::size_t>(cfg_.num_sms));
  for (int sm = 0; sm < cfg_.num_sms; ++sm) {
    l1_.emplace_back(cfg_.l1_bytes, cfg_.line_bytes, cfg_.sector_bytes,
                     cfg_.l1_ways);
  }
}

std::uint64_t Device::alloc_bytes(std::size_t bytes) {
  const std::size_t aligned = round_up<std::size_t>(used_, 256);
  VSPARSE_CHECK_MSG(aligned + bytes <= capacity_,
                    "simulated DRAM exhausted: want "
                        << bytes << "B, used " << used_ << "B of "
                        << capacity_ << "B — call Device::reset() between "
                        << "independent experiments");
  used_ = aligned + bytes;
  std::memset(arena_.get() + aligned, 0, bytes);
  allocations_.emplace(aligned, bytes);
  live_ += bytes;
  if (live_ > peak_) peak_ = live_;
  return aligned;
}

void Device::free_bytes(std::uint64_t addr) {
  auto it = allocations_.find(addr);
  VSPARSE_CHECK_MSG(it != allocations_.end(),
                    "free of unknown device address " << addr);
  live_ -= it->second;
  allocations_.erase(it);
}

void Device::reset() {
  used_ = 0;
  live_ = 0;
  peak_ = 0;
  allocations_.clear();
  flush_all_caches();
}

void Device::flush_l1() {
  for (SectorCache& c : l1_) c.flush();
}

void Device::flush_all_caches() {
  flush_l1();
  l2_.flush();
}

}  // namespace vsparse::gpusim

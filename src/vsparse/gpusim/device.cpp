#include "vsparse/gpusim/device.hpp"

#include <algorithm>
#include <sstream>

#include "vsparse/gpusim/faults.hpp"

namespace vsparse::gpusim {

const char* device_fault_name(DeviceFault fault) {
  switch (fault) {
    case DeviceFault::kNone:
      return "none";
    case DeviceFault::kWedged:
      return "wedged";
    case DeviceFault::kDead:
      return "dead";
  }
  return "none";
}

Device::Device(DeviceConfig cfg)
    : cfg_(cfg),
      l2_(cfg.l2_bytes, cfg.line_bytes, cfg.sector_bytes, cfg.l2_ways,
          cfg.l2_slices) {
  capacity_ = cfg_.dram_capacity;
  // for_overwrite: the arena must not be value-initialized — it can be
  // gigabytes, and alloc_bytes() zeroes each allocation on demand.
  arena_ = std::make_unique_for_overwrite<std::byte[]>(capacity_);
}

std::uint64_t Device::alloc_bytes(std::size_t bytes, const char* name,
                                  std::size_t slack_bytes) {
  std::size_t aligned;
  {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    const std::size_t used = used_.load(std::memory_order_relaxed);
    aligned = round_up<std::size_t>(used, 256);
    // Checked as two comparisons so `aligned + bytes` cannot wrap for
    // huge requests (mirrors the Device::translate guard).
    VSPARSE_CHECK_RAISE(bytes <= capacity_ && aligned <= capacity_ - bytes,
                        ErrorCode::kOutOfMemory, "gpusim.alloc",
                        "simulated DRAM exhausted: want "
                            << bytes << "B, used " << used << "B of "
                            << capacity_ << "B — call Device::reset() between "
                            << "independent experiments");
    // The vector-load slack (see Device::alloc) deliberately does NOT
    // advance the bump pointer or the accounting: it only widens what
    // the sanitizer's boundscheck accepts, so declaring slack can never
    // perturb the memory layout a calibrated run depends on.
    used_.store(aligned + bytes, std::memory_order_relaxed);
    allocations_.emplace(aligned, AllocInfo{bytes, slack_bytes, true, name});
    const std::size_t live = live_.load(std::memory_order_relaxed) + bytes;
    live_.store(live, std::memory_order_relaxed);
    if (live > peak_.load(std::memory_order_relaxed)) {
      peak_.store(live, std::memory_order_relaxed);
    }
  }
  // Zero outside the lock: the region is already reserved, so it is
  // private to this allocation and the memset can be arbitrarily large.
  // The slack tail up to the next 256 B boundary is zeroed too (that
  // span can never belong to another allocation); slack beyond it
  // overlaps the neighbouring allocation and keeps its bytes.
  std::size_t zero_bytes = bytes;
  if (slack_bytes > 0) {
    const std::size_t block_end =
        std::min<std::size_t>(round_up<std::size_t>(aligned + bytes, 256),
                              capacity_);
    zero_bytes = std::min(aligned + bytes + slack_bytes, block_end) - aligned;
  }
  std::memset(arena_.get() + aligned, 0, zero_bytes);
  return aligned;
}

void Device::free_bytes(std::uint64_t addr) {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  auto it = allocations_.find(addr);
  VSPARSE_CHECK_MSG(it != allocations_.end() && it->second.live,
                    "free of unknown device address " << addr);
  live_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  // Keep the dead record: the bump arena never reuses addresses, so the
  // sanitizer (and translate errors) can distinguish "use after free"
  // from "never allocated".  Device::reset drops everything.
  it->second.live = false;
}

std::vector<AllocRecord> Device::allocation_snapshot() const {
  std::vector<AllocRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    snapshot.reserve(allocations_.size());
    for (const auto& [addr, info] : allocations_) {
      snapshot.push_back(
          AllocRecord{addr, info.bytes, info.slack, info.live, info.name});
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const AllocRecord& a, const AllocRecord& b) {
              return a.addr < b.addr;
            });
  return snapshot;
}

std::string Device::describe_addr(std::uint64_t addr) const {
  // Nearest allocation at or below `addr` (the bump allocator hands out
  // strictly increasing, non-overlapping ranges).
  std::uint64_t best_addr = 0;
  AllocInfo best;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    for (const auto& [base, info] : allocations_) {
      if (base <= addr && (!found || base > best_addr)) {
        best_addr = base;
        best = info;
        found = true;
      }
    }
  }
  std::ostringstream os;
  if (!found) {
    os << "no allocation at or below address " << addr;
    return os.str();
  }
  os << (best.live ? "allocation" : "freed allocation") << " '"
     << (best.name.empty() ? "(unnamed)" : best.name.c_str()) << "' ["
     << best_addr << ", " << best_addr + best.bytes << ')';
  if (addr >= best_addr + best.bytes) {
    os << " ends " << addr - (best_addr + best.bytes - 1)
       << "B before this address";
  } else {
    os << " (+ offset " << addr - best_addr << ')';
  }
  return os.str();
}

void Device::translate_fail(std::uint64_t addr, std::size_t len,
                            std::size_t used) const {
  std::ostringstream os;
  os << "device OOB access: addr=" << addr << " len=" << len
     << " used=" << used << "; nearest: " << describe_addr(addr);
  ::vsparse::detail::check_failed("len <= used && addr <= used - len",
                                  __FILE__, __LINE__, os.str());
}

void Device::reset() {
  {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    used_.store(0, std::memory_order_relaxed);
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    allocations_.clear();
  }
  flush_all_caches();
}

void Device::flush_all_caches() {
  // L1s live in per-launch SmContexts and are born cold; the only
  // persistent cache a Device owns is the L2.
  l2_.flush();
}

void Device::set_fault_plan(FaultPlan* plan) {
  if (plan != nullptr) plan->prepare(cfg_.num_sms);
  fault_plan_ = plan;
}

}  // namespace vsparse::gpusim

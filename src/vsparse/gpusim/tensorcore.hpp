// Tensor Core Unit model.
//
// Implements the Volta octet-level `mma.m8n8k4` exactly as the paper
// describes it (§2.1, Fig. 2): a warp executes four (8x4)·(4x8) matrix
// multiplications, one per octet, decomposed into the four HMMA steps
//
//   STEP 0: A rows held by the LOW  group x B cols of the LOW  group
//           -> output columns 0..3 of the low-group accumulators
//   STEP 1: A rows held by the HIGH group x B cols of the LOW  group
//           -> output columns 0..3 of the high-group accumulators
//   STEP 2: low  rows x HIGH-group B cols -> output columns 4..7 (low)
//   STEP 3: high rows x HIGH-group B cols -> output columns 4..7 (high)
//
// Fragment register layout used by this model (documented contract —
// our kernels both produce and consume it):
//   * Octet o = thread group o (lanes 4o..4o+3, the LOW group) plus
//     thread group o+4 (lanes 16+4o..16+4o+3, the HIGH group).
//   * A fragment: the j-th lane of the low group holds row j of the
//     octet's 8x4 A tile (4 halves); the j-th lane of the high group
//     holds row 4+j.
//   * B fragment: same layout over the columns of the 4x8 B tile.
//   * C fragment: the lane holding A row i accumulates row i of the
//     8x8 output (8 floats, fp32 accumulation).
//
// The SWITCH extension (§6.3, Fig. 15): when `switch_groups` is set,
// the Mat_a buffer sources of thread groups i and i+4 are exchanged and
// the Mat_b multiplexer control is XOR-ed — operationally, the low and
// high halves of both source fragments are swapped before the four
// steps execute (accumulators stay put).  This is the
// HMMA.884.F32.F32.STEP{0-3}.SWITCH instruction the paper proposes; the
// simulator charges it the same four HMMA issue slots but no extra
// SHFLs or registers, which is exactly the benefit claimed.
//
// `step_mask` models the §5.3 future-work optimization of removing
// STEP 2&3 from the SASS when V <= 4 (the paper could not do this for
// lack of an assembler, §7.1.3; we expose it for the ablation bench).
#pragma once

#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/engine/cta.hpp"

namespace vsparse::gpusim {

// The MMA ops are Warp methods (`Warp::mma_m8n8k4`,
// `Warp::wmma_m8n32k16` in engine/cta.hpp) so that `Warp` is the single
// entry point for every warp-level operation.  The fragment types
// (MmaFragAB, MmaFragC, MmaFlags) live beside them.  The free-function
// forms below forward to the methods for source compatibility.

/// Compatibility forwarder; prefer `w.mma_m8n8k4(a, b, c, flags)`.
inline void mma_m8n8k4(Warp& w, const MmaFragAB& a, const MmaFragAB& b,
                       MmaFragC& c, MmaFlags flags = {}) {
  w.mma_m8n8k4(a, b, c, flags);
}

/// Compatibility forwarder; prefer `w.wmma_m8n32k16(a, b, c)`.
/// The per-thread fragment layouts of Figs. 10/13 live in the
/// *kernels'* load code (that is where they constrain memory
/// coalescing); the op consumes the assembled logical tiles.
inline void wmma_m8n32k16(Warp& w, const half_t (&a)[8][16],
                          const half_t (&b)[16][32], float (&c)[8][32]) {
  w.wmma_m8n32k16(a, b, c);
}

}  // namespace vsparse::gpusim

// Simulated device: DRAM arena, typed buffers, the shared (sliced) L2,
// and peak-memory accounting (the Table 4 "Peak Memory" column is the
// high-water mark of live allocations on this device).
//
// Per-SM state (L1, shared-memory arena, counter block) lives in the
// execution engine's SmContext (engine/sm_context.hpp), created fresh
// for every launch — which is exactly the kernel-boundary L1
// invalidation semantics real GPUs have.  The Device holds only the
// state that is shared across SMs and persists across launches.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/common/math.hpp"
#include "vsparse/gpusim/cache.hpp"
#include "vsparse/gpusim/config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/serve/error.hpp"

namespace vsparse::gpusim {

class Device;
class FaultPlan;

/// Device-level fault domain — the whole-device failure modes the
/// serving fleet's chaos layer arms (contrast FaultPlan, which strikes
/// individual loads/MMAs inside an otherwise healthy launch):
///
///   kWedged  every launch times out before scheduling a single CTA
///            (vsparse::Error{kLaunchTimeout, "gpusim.device.wedged"})
///   kDead    the device is lost permanently
///            (vsparse::Error{kDeviceLost, "gpusim.device.lost"})
///
/// kNone is the default and the only state a fault-free run can
/// observe, so the check on the launch path costs one predictable
/// branch and the bit/counter-identity contract is untouched.
enum class DeviceFault : std::uint8_t { kNone = 0, kWedged, kDead };

const char* device_fault_name(DeviceFault fault);

/// One allocation as seen by diagnostics: the sanitizer's boundscheck
/// snapshots the allocation table at launch start (sorted by address)
/// and `Device::translate` names the nearest allocation in its OOB
/// error.  `live == false` means logically freed — the bump arena never
/// reuses addresses, so dead records persist until Device::reset and a
/// touch inside one is a use-after-free, not a wild pointer.
struct AllocRecord {
  std::uint64_t addr = 0;
  std::size_t bytes = 0;
  /// Sputnik-style vector-load tail: bytes past `bytes` the boundscheck
  /// accepts as in-bounds (see Device::alloc_copy).  Zero by default.
  std::size_t slack = 0;
  bool live = true;
  std::string name;  ///< caller-provided label; empty = unnamed
};

/// Handle to a typed allocation in simulated device memory.  Copyable
/// view (does not own); lifetime is managed by the Device (free/reset).
template <class T>
class Buffer {
 public:
  Buffer() = default;
  Buffer(Device* dev, std::uint64_t addr, std::size_t count)
      : dev_(dev), addr_(addr), count_(count) {}

  /// Device byte address of element `i` — what kernels feed to ldg/stg.
  std::uint64_t addr(std::size_t i = 0) const {
    VSPARSE_DCHECK(i <= count_);
    return addr_ + i * sizeof(T);
  }
  std::size_t size() const { return count_; }
  std::size_t bytes() const { return count_ * sizeof(T); }
  bool empty() const { return count_ == 0; }

  /// Host-side view for initialization / result readback (the simulated
  /// DRAM is host memory, so "cudaMemcpy" is a plain span).
  std::span<T> host();
  std::span<const T> host() const;

 private:
  Device* dev_ = nullptr;
  std::uint64_t addr_ = 0;
  std::size_t count_ = 0;
};

/// The simulated GPU.  Owns DRAM and the sliced L2; per-SM L1s belong
/// to the engine's per-launch SmContexts.  Execution itself lives in
/// the engine (`launch()` in gpusim/engine/), which drives warps
/// against this device — possibly from several host threads, so
/// everything reachable from here during a launch is either read-only
/// (config, arena translation) or internally synchronized (the L2).
class Device {
 public:
  explicit Device(DeviceConfig cfg = DeviceConfig::volta_v100());

  /// Movable so factory helpers can return by value.  The mutex and
  /// atomic accounting members require a hand-written move; moving a
  /// Device that other threads are concurrently using is (as always)
  /// undefined, so the source's mutex is not taken.
  Device(Device&& other) noexcept
      : cfg_(std::move(other.cfg_)),
        arena_(std::move(other.arena_)),
        capacity_(other.capacity_),
        used_(other.used_.load(std::memory_order_relaxed)),
        live_(other.live_.load(std::memory_order_relaxed)),
        peak_(other.peak_.load(std::memory_order_relaxed)),
        allocations_(std::move(other.allocations_)),
        l2_(std::move(other.l2_)),
        sim_options_(other.sim_options_),
        fault_plan_(other.fault_plan_),
        device_fault_(other.device_fault_) {}
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  Device& operator=(Device&&) = delete;

  const DeviceConfig& config() const { return cfg_; }

  /// Allocate `count` elements of T, 256-byte aligned (so 128 B
  /// transaction alignment analysis is meaningful).  Contents zeroed.
  /// `name` labels the allocation in diagnostics (translate OOB errors,
  /// sanitizer boundscheck reports); empty = unnamed.
  /// Raises vsparse::Error{kAllocOverflow} on size-arithmetic wrap and
  /// vsparse::Error{kOutOfMemory} when the arena is exhausted.
  /// `tail_slack_bytes` declares a Sputnik-style vector-load tail: a
  /// kernel whose widest aligned vector load may overhang the final
  /// element (LDG.64 index pairs, 16 B-aligned LDG.128 value streams)
  /// needs those bytes readable, and real Sputnik requires its input
  /// arrays padded accordingly.  The slack is *not* arena padding — the
  /// bump pointer advances exactly as for a slack-free allocation, so
  /// the memory layout (and with it every address-sensitive cache
  /// statistic) is unchanged; the tail lives in the 256 B alignment gap
  /// the allocator leaves anyway, and the sanitizer's boundscheck
  /// accepts it instead of reporting a red-zone hit.  Overhang loads
  /// return zeros or the neighbouring allocation's bytes; kernels must
  /// never consume them (they exist to keep the *access* legal).
  template <class T>
  Buffer<T> alloc(std::size_t count, const char* name = "",
                  std::size_t tail_slack_bytes = 0) {
    VSPARSE_CHECK_RAISE(count <= SIZE_MAX / sizeof(T),
                        ErrorCode::kAllocOverflow, "gpusim.alloc",
                        "device alloc overflows size_t: count="
                            << count << " elem_size=" << sizeof(T));
    const std::uint64_t addr =
        alloc_bytes(count * sizeof(T), name, tail_slack_bytes);
    return Buffer<T>(this, addr, count);
  }

  /// Allocate and fill from host data.  `tail_slack_elems` elements of
  /// vector-load slack are declared past the logical end (see alloc).
  template <class T>
  Buffer<T> alloc_copy(std::span<const T> src, const char* name = "",
                       std::size_t tail_slack_elems = 0) {
    Buffer<T> buf =
        alloc<T>(src.size(), name, tail_slack_elems * sizeof(T));
    if (!src.empty()) {
      std::memcpy(translate(buf.addr(), src.size() * sizeof(T)), src.data(),
                  src.size() * sizeof(T));
    }
    return buf;
  }

  /// Logically release an allocation (for peak-memory accounting).  The
  /// arena itself is bump-allocated and reclaimed only by reset().
  template <class T>
  void free(const Buffer<T>& buf) {
    free_bytes(buf.addr());
  }

  /// Drop all allocations and flush caches.
  void reset();

  /// Currently-live allocated bytes.
  std::size_t live_bytes() const {
    return live_.load(std::memory_order_relaxed);
  }
  /// High-water mark of live bytes since construction / reset_peak().
  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset_peak() {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    peak_.store(live_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  /// Total arena size and bump-pointer position — what a serving-layer
  /// reservation check compares a request's footprint against before
  /// launching anything.
  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }

  /// Bounds-checked translation of a device address range to host memory.
  /// Guarded against `addr + len` wrapping around std::uint64_t: the
  /// length is checked against the arena first, then the address
  /// against the remaining room, so no sum can overflow.
  std::byte* translate(std::uint64_t addr, std::size_t len) {
    // Relaxed: concurrent allocators can only grow `used_`, and a
    // translation of an address another thread is still allocating
    // requires external synchronization anyway.
    const std::size_t used = used_.load(std::memory_order_relaxed);
    if (len > used || addr > used - len) [[unlikely]] {
      translate_fail(addr, len, used);
    }
    return arena_.get() + addr;
  }
  const std::byte* translate(std::uint64_t addr, std::size_t len) const {
    return const_cast<Device*>(this)->translate(addr, len);
  }

  ShardedCache& l2() { return l2_; }

  /// Flush every cache level.  L1s are per-launch (engine SmContexts),
  /// so "all caches" a Device can flush between launches is the L2;
  /// benches call this to make back-to-back kernel runs cache-cold.
  void flush_all_caches();

  /// Default execution options used by `launch()` when the caller does
  /// not pass explicit SimOptions (or passes threads == 0 meaning
  /// "inherit").  Lets a driver opt a whole device into multi-threaded
  /// simulation without plumbing options through every kernel call.
  const SimOptions& sim_options() const { return sim_options_; }
  void set_sim_options(const SimOptions& opts) { sim_options_ = opts; }

  /// Snapshot of the allocation table, sorted by address, dead records
  /// included.  Taken once per sanitized launch (engine `run_launch`)
  /// so the per-lane boundscheck walks an immutable local array instead
  /// of taking `alloc_mutex_` on the hot path.
  std::vector<AllocRecord> allocation_snapshot() const;

  /// "allocation 'a_values' [256, 4352) (+ offset 12)" for the nearest
  /// allocation at or below `addr`, or a note that none exists.  Cold
  /// path (takes alloc_mutex_); used by translate errors and sanitizer
  /// report details.
  std::string describe_addr(std::uint64_t addr) const;

  /// Attach (or detach, with nullptr) a fault-injection plan.  The plan
  /// must outlive the attachment; it is prepared for this device's SM
  /// count so targeted faults carry per-SM armed state across launches.
  /// With no plan attached every launch takes the null fast path and is
  /// bit- and counter-identical to a fault-free build.
  void set_fault_plan(FaultPlan* plan);
  FaultPlan* fault_plan() const { return fault_plan_; }

  /// Arm (or clear, with kNone) a device-level fault domain.  Checked
  /// once at launch entry (engine_detail::check_device_serviceable)
  /// before any CTA is scheduled; survives reset() deliberately — a
  /// wedged device stays wedged until the fleet's chaos window ends,
  /// however many requests are retried on it in between.
  void set_device_fault(DeviceFault fault) { device_fault_ = fault; }
  DeviceFault device_fault() const { return device_fault_; }

 private:
  struct AllocInfo {
    std::size_t bytes = 0;
    std::size_t slack = 0;
    bool live = true;
    std::string name;
  };

  std::uint64_t alloc_bytes(std::size_t bytes, const char* name,
                            std::size_t slack_bytes = 0);
  void free_bytes(std::uint64_t addr);
  [[noreturn]] void translate_fail(std::uint64_t addr, std::size_t len,
                                   std::size_t used) const;

  DeviceConfig cfg_;
  std::unique_ptr<std::byte[]> arena_;
  std::size_t capacity_ = 0;
  // Accounting is mutated under alloc_mutex_ (host-side alloc/free can
  // race from serving threads); the counters are atomics so the
  // read-only accessors — and the translate() bounds check on the hot
  // simulation path — stay lock-free.
  mutable std::mutex alloc_mutex_;
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
  std::unordered_map<std::uint64_t, AllocInfo> allocations_;
  ShardedCache l2_;
  SimOptions sim_options_;
  FaultPlan* fault_plan_ = nullptr;
  DeviceFault device_fault_ = DeviceFault::kNone;
};

template <class T>
std::span<T> Buffer<T>::host() {
  VSPARSE_CHECK(dev_ != nullptr);
  return {reinterpret_cast<T*>(dev_->translate(addr_, bytes())), count_};
}

template <class T>
std::span<const T> Buffer<T>::host() const {
  VSPARSE_CHECK(dev_ != nullptr);
  return {reinterpret_cast<const T*>(dev_->translate(addr_, bytes())), count_};
}

}  // namespace vsparse::gpusim

// Sector-granular set-associative cache models.
//
// GPU L1/L2 caches tag at 128 B line granularity but fill and count
// misses at 32 B *sector* granularity (§2.1, Jia et al. [11]).  The
// paper's Fig. 5 ("L1$ Missed Sectors") and Fig. 18 ("Bytes L2$->L1$")
// are defined in these units, so the model reproduces exactly that:
// a lookup hits iff the line is resident AND the requested sector has
// been filled; a miss fills only the requested sector (no prefetch of
// sibling sectors).
//
// Two front-ends share the line/set logic (detail::SetArray):
//   * SectorCache  — unsynchronized; one per SM as its private L1.
//   * ShardedCache — the device-wide L2, partitioned into address-
//     interleaved slices (slice = set % num_slices) each with its own
//     lock and LRU clock so concurrent SM threads contend only when
//     they touch the same slice.  Slicing is *counter-preserving*: the
//     line -> set mapping is identical to SectorCache's and LRU order
//     within a set depends only on that slice's access order, so a
//     serial access stream produces bit-identical hit/miss results for
//     any slice count.
#pragma once

#include <atomic>
#include <bit>
#include <thread>
#include <cstdint>
#include <memory>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/common/math.hpp"

namespace vsparse::gpusim {

namespace detail {

/// Geometry plus the tag/sector/LRU state shared by both cache
/// front-ends.  Not synchronized; callers serialize access per set
/// (SectorCache globally, ShardedCache per slice).
class SetArray {
 public:
  /// capacity/line/sector in bytes; capacity must be a multiple of
  /// (ways * line_bytes) and line_bytes a power-of-two multiple of
  /// sector_bytes.
  SetArray(std::size_t capacity_bytes, int line_bytes, int sector_bytes,
           int ways);

  /// Access one sector (sector-aligned address) stamping LRU with
  /// `tick`.  Returns true on hit; on miss the sector is filled
  /// (evicting the LRU line of the set if the line was not resident).
  /// Kept inline: this is the single hottest call in the simulator
  /// (every unique sector of every warp memory op walks it).
  bool access(std::uint64_t sector_addr, std::uint64_t tick) {
    const std::uint64_t line_addr =
        sector_addr / static_cast<std::uint64_t>(line_bytes_);
    return access_in_set(sector_addr, line_addr, set_index(line_addr), tick);
  }

  /// `access` with the line address and set index precomputed (the
  /// sharded front-end derives the slice from the same set index, so
  /// it hashes once and passes both down).
  bool access_in_set(std::uint64_t sector_addr, std::uint64_t line_addr,
                     std::size_t set, std::uint64_t tick) {
    VSPARSE_DCHECK(sector_addr % static_cast<std::uint64_t>(sector_bytes_) ==
                   0);
    const int sector_idx = static_cast<int>(
        (sector_addr / static_cast<std::uint64_t>(sector_bytes_)) %
        static_cast<std::uint64_t>(sectors_per_line_));
    const std::uint32_t sector_bit = 1u << sector_idx;

    const std::size_t base = set * static_cast<std::size_t>(ways_);
    const int w = find_way(line_addr, base);
    if (w >= 0) {
      lru_[base + w] = tick;
      if (valid_[base + w] & sector_bit) return true;
      valid_[base + w] |= sector_bit;  // sector miss, line resident
      return false;
    }

    // Line miss: evict the LRU way of the set, install with one sector.
    std::size_t victim = base;
    for (int i = 1; i < ways_; ++i) {
      if (lru_[base + i] < lru_[victim]) victim = base + i;
    }
    tags_[victim] = line_addr;
    valid_[victim] = sector_bit;
    lru_[victim] = tick;
    return false;
  }

  /// Invalidate one sector if resident (store coherence).
  void invalidate_sector(std::uint64_t sector_addr) {
    const std::uint64_t line_addr =
        sector_addr / static_cast<std::uint64_t>(line_bytes_);
    invalidate_sector_in_set(sector_addr, line_addr, set_index(line_addr));
  }

  /// `invalidate_sector` with line address and set precomputed.
  void invalidate_sector_in_set(std::uint64_t sector_addr,
                                std::uint64_t line_addr, std::size_t set) {
    const std::size_t base = set * static_cast<std::size_t>(ways_);
    if (const int w = find_way(line_addr, base); w >= 0) {
      const int sector_idx = static_cast<int>(
          (sector_addr / static_cast<std::uint64_t>(sector_bytes_)) %
          static_cast<std::uint64_t>(sectors_per_line_));
      valid_[base + w] &= ~(1u << sector_idx);
      if (valid_[base + w] == 0) tags_[base + w] = kInvalidTag;
    }
  }

  /// Batched form: access every sector in `sector_bits` (bit i = sector
  /// i of the line at `line_addr`), advancing the LRU clock by the
  /// popcount.  Returns the subset of bits that hit.  Equivalent to
  /// issuing the sectors one at a time in ascending order: all accesses
  /// target the same line, so the per-sector walk would find the line
  /// resident after the first touch, accumulate the same valid bits,
  /// and leave lru at the final tick — exactly what one probe does.
  std::uint32_t access_line(std::uint64_t line_addr,
                            std::uint32_t sector_bits, std::uint64_t tick) {
    const std::size_t base =
        set_index(line_addr) * static_cast<std::size_t>(ways_);
    const int w = find_way(line_addr, base);
    if (w >= 0) {
      lru_[base + w] = tick;
      const std::uint32_t hits = valid_[base + w] & sector_bits;
      valid_[base + w] |= sector_bits;
      return hits;
    }
    std::size_t victim = base;
    for (int i = 1; i < ways_; ++i) {
      if (lru_[base + i] < lru_[victim]) victim = base + i;
    }
    tags_[victim] = line_addr;
    valid_[victim] = sector_bits;
    lru_[victim] = tick;
    return 0;
  }

  /// Batched invalidate of every sector in `sector_bits` of one line.
  void invalidate_line(std::uint64_t line_addr, std::uint32_t sector_bits) {
    const std::size_t base =
        set_index(line_addr) * static_cast<std::size_t>(ways_);
    if (const int w = find_way(line_addr, base); w >= 0) {
      valid_[base + w] &= ~sector_bits;
      if (valid_[base + w] == 0) tags_[base + w] = kInvalidTag;
    }
  }

  /// Drop all contents.
  void flush();

  /// Set index of the line holding `sector_addr` (XOR-folded hash).
  std::size_t set_of_sector(std::uint64_t sector_addr) const {
    return set_index(sector_addr / static_cast<std::uint64_t>(line_bytes_));
  }

  /// Set index of a line address (XOR-folded hash, divide-free).
  std::size_t set_index(std::uint64_t line_addr) const {
    // XOR-folded set hashing, as GPU caches use: without it, power-of-two
    // strides (e.g. the 512 B row stride of a 256-column half matrix)
    // alias a handful of sets and the effective capacity collapses.
    std::uint64_t h = line_addr;
    h ^= h >> 8;
    h ^= h >> 16;
    // The reduction mod sets_ sits on the hottest path in the simulator,
    // so avoid the hardware divide: a mask when sets_ is a power of two,
    // else a Lemire multiply-reduction (exact for h < 2^32; folded line
    // indices stay far below that for any practical arena, and the rare
    // larger value falls back to the divide).  All three produce the
    // identical h % sets_ value, so set mapping — and every cache
    // counter — is unchanged.
    if (sets_mask_ != 0) return static_cast<std::size_t>(h & sets_mask_);
    if (h <= 0xFFFFFFFFu) [[likely]] {
      const std::uint64_t lowbits = sets_magic_ * h;
      return static_cast<std::size_t>(
          (static_cast<unsigned __int128>(lowbits) *
           static_cast<std::uint64_t>(sets_)) >>
          64);
    }
    return static_cast<std::size_t>(h % static_cast<std::uint64_t>(sets_));
  }


  int num_sets() const { return sets_; }
  int ways() const { return ways_; }
  int line_bytes() const { return line_bytes_; }
  int sector_bytes() const { return sector_bytes_; }

 private:
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

  /// Way index of `line_addr` within the set whose ways begin at flat
  /// index `base`, or -1.  Tags live in their own dense array so the
  /// scan reads 8 B per way: a 16-way L2 set spans two host cache
  /// lines instead of the six an array-of-structs layout touches.
  /// Keeping the read-mostly tags apart from the written-every-probe
  /// lru/valid metadata also keeps multi-worker simulations from
  /// ping-ponging the tag lines on every LRU stamp.
  int find_way(std::uint64_t line_addr, std::size_t base) const {
    for (int w = 0; w < ways_; ++w) {
      if (tags_[base + w] == line_addr) return w;
    }
    return -1;
  }

  int line_bytes_;
  int sector_bytes_;
  int sectors_per_line_;
  int ways_;
  int sets_;
  std::uint64_t sets_mask_ = 0;   ///< sets_ - 1 when sets_ is a power of two
  std::uint64_t sets_magic_ = 0;  ///< ceil(2^64 / sets_) for the Lemire path
  // sets_ * ways_ entries each, set-major, structure-of-arrays.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> valid_;  ///< bit i = sector i resident
  std::vector<std::uint64_t> lru_;    ///< last-touch tick
};

}  // namespace detail

/// Single-owner cache (the per-SM L1).  Not thread-safe; each SM's L1
/// is only ever touched by the thread executing that SM's CTAs.
class SectorCache {
 public:
  SectorCache(std::size_t capacity_bytes, int line_bytes, int sector_bytes,
              int ways)
      : array_(capacity_bytes, line_bytes, sector_bytes, ways) {}

  /// Access one sector.  `sector_addr` must be sector-aligned.
  /// Returns true on hit; on miss the sector is filled (evicting the
  /// LRU line of the set if the line was not resident).
  bool access(std::uint64_t sector_addr) {
    return array_.access(sector_addr, ++tick_);
  }

  /// Invalidate one sector if resident (used for store coherence).
  void invalidate_sector(std::uint64_t sector_addr) {
    array_.invalidate_sector(sector_addr);
  }

  /// Batched line access (see SetArray::access_line): accesses every
  /// sector in `sector_bits` of the line containing `line_base` (a
  /// line-aligned byte address) and returns the hit subset.
  std::uint32_t access_line(std::uint64_t line_base,
                            std::uint32_t sector_bits) {
    tick_ += static_cast<std::uint64_t>(std::popcount(sector_bits));
    return array_.access_line(
        line_base / static_cast<std::uint64_t>(array_.line_bytes()),
        sector_bits, tick_);
  }

  /// Batched line invalidate (store coherence).
  void invalidate_line(std::uint64_t line_base, std::uint32_t sector_bits) {
    array_.invalidate_line(
        line_base / static_cast<std::uint64_t>(array_.line_bytes()),
        sector_bits);
  }

  /// Drop all contents (kernel-boundary invalidation for L1).
  void flush() {
    array_.flush();
    tick_ = 0;
  }

  int num_sets() const { return array_.num_sets(); }
  int ways() const { return array_.ways(); }
  int line_bytes() const { return array_.line_bytes(); }
  int sector_bytes() const { return array_.sector_bytes(); }

 private:
  detail::SetArray array_;
  std::uint64_t tick_ = 0;
};

/// The device-wide L2: the same cache model, sliced for concurrency.
/// Real GPU L2s are physically partitioned into address-interleaved
/// slices; here each slice owns the sets with set % num_slices ==
/// slice_id, guarded by a per-slice mutex so SM threads running on
/// different host threads serialize only within a slice.
class ShardedCache {
 public:
  ShardedCache(std::size_t capacity_bytes, int line_bytes, int sector_bytes,
               int ways, int num_slices);

  /// Thread-safe sector access (locks the owning slice).  Inline for
  /// the same reason as SetArray::access — every L1-missed sector of
  /// every warp op lands here.
  bool access(std::uint64_t sector_addr) {
    const std::uint64_t line_addr =
        sector_addr / static_cast<std::uint64_t>(array_.line_bytes());
    const std::size_t set = array_.set_index(line_addr);
    Slice& slice = slices_[slice_of_set(set)];
    SliceGuard lock(slice);
    // Per-slice LRU clock: within a set (which belongs to exactly one
    // slice) ticks are monotone in access order, so LRU decisions match
    // a single global clock — slicing never changes serial counters.
    return array_.access_in_set(sector_addr, line_addr, set, ++slice.tick);
  }

  /// Thread-safe sector invalidation (store coherence).
  void invalidate_sector(std::uint64_t sector_addr) {
    const std::uint64_t line_addr =
        sector_addr / static_cast<std::uint64_t>(array_.line_bytes());
    const std::size_t set = array_.set_index(line_addr);
    Slice& slice = slices_[slice_of_set(set)];
    SliceGuard lock(slice);
    array_.invalidate_sector_in_set(sector_addr, line_addr, set);
  }

  /// Batched line access under one slice lock (see
  /// SetArray::access_line); `line_base` is a line-aligned byte address.
  std::uint32_t access_line(std::uint64_t line_base,
                            std::uint32_t sector_bits) {
    const std::uint64_t line_addr =
        line_base / static_cast<std::uint64_t>(array_.line_bytes());
    const std::size_t set = array_.set_index(line_addr);
    Slice& slice = slices_[slice_of_set(set)];
    SliceGuard lock(slice);
    slice.tick += static_cast<std::uint64_t>(std::popcount(sector_bits));
    return array_.access_line(line_addr, sector_bits, slice.tick);
  }

  /// Drop all contents.  Not concurrency-safe against in-flight
  /// accesses; only called between launches.
  void flush();

  int num_slices() const { return num_slices_; }
  int num_sets() const { return array_.num_sets(); }
  int ways() const { return array_.ways(); }
  int line_bytes() const { return array_.line_bytes(); }
  int sector_bytes() const { return array_.sector_bytes(); }

 private:
  /// Per-slice state guarded by a spinlock: the critical section is a
  /// handful of loads/stores (one set probe), far shorter than a futex
  /// round-trip, and slices outnumber worker threads so contention is
  /// rare — spinning is strictly cheaper than std::mutex here.
  // One cache line per slice: adjacent slices would otherwise share a
  // line and every lock acquisition would ping-pong it between workers.
  struct alignas(64) Slice {
    std::atomic_flag mu = ATOMIC_FLAG_INIT;
    std::uint64_t tick = 0;
  };
  class SliceGuard {
   public:
    explicit SliceGuard(Slice& s) : s_(s) {
      int spins = 0;
      while (s_.mu.test_and_set(std::memory_order_acquire)) {
        while (s_.mu.test(std::memory_order_relaxed)) {
          // When workers outnumber cores the holder may be preempted;
          // spinning would then burn the holder's whole quantum, so
          // hand the CPU back after a short bounded spin.
          if (++spins >= 256) {
            std::this_thread::yield();
            spins = 0;
          }
        }
      }
    }
    ~SliceGuard() { s_.mu.clear(std::memory_order_release); }
    SliceGuard(const SliceGuard&) = delete;
    SliceGuard& operator=(const SliceGuard&) = delete;

   private:
    Slice& s_;
  };

  std::size_t slice_of_set(std::size_t set) const {
    return slice_mask_ != ~std::size_t{0}
               ? (set & slice_mask_)
               : set % static_cast<std::size_t>(num_slices_);
  }

  detail::SetArray array_;
  int num_slices_;
  std::size_t slice_mask_ = ~std::size_t{0};  ///< num_slices-1 if pow2
  std::unique_ptr<Slice[]> slices_;
};

}  // namespace vsparse::gpusim

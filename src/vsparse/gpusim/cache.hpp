// Sector-granular set-associative cache model.
//
// GPU L1/L2 caches tag at 128 B line granularity but fill and count
// misses at 32 B *sector* granularity (§2.1, Jia et al. [11]).  The
// paper's Fig. 5 ("L1$ Missed Sectors") and Fig. 18 ("Bytes L2$->L1$")
// are defined in these units, so the model reproduces exactly that:
// a lookup hits iff the line is resident AND the requested sector has
// been filled; a miss fills only the requested sector (no prefetch of
// sibling sectors).
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/common/math.hpp"

namespace vsparse::gpusim {

class SectorCache {
 public:
  /// capacity/line/sector in bytes; capacity must be a multiple of
  /// (ways * line_bytes) and line_bytes a power-of-two multiple of
  /// sector_bytes.
  SectorCache(std::size_t capacity_bytes, int line_bytes, int sector_bytes,
              int ways);

  /// Access one sector.  `sector_addr` must be sector-aligned.
  /// Returns true on hit; on miss the sector is filled (evicting the
  /// LRU line of the set if the line was not resident).
  bool access(std::uint64_t sector_addr);

  /// Invalidate one sector if resident (used for store coherence).
  void invalidate_sector(std::uint64_t sector_addr);

  /// Drop all contents (kernel-boundary invalidation for L1).
  void flush();

  int num_sets() const { return sets_; }
  int ways() const { return ways_; }
  int line_bytes() const { return line_bytes_; }
  int sector_bytes() const { return sector_bytes_; }

 private:
  struct Line {
    std::uint64_t tag = kInvalidTag;
    std::uint32_t sector_valid = 0;  ///< bit i = sector i resident
    std::uint64_t lru = 0;           ///< last-touch tick
  };
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

  Line* find_line(std::uint64_t line_addr, std::size_t set);
  std::size_t set_index(std::uint64_t line_addr) const;

  int line_bytes_;
  int sector_bytes_;
  int sectors_per_line_;
  int ways_;
  int sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  ///< sets_ * ways_, set-major
};

}  // namespace vsparse::gpusim

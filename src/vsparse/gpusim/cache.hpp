// Sector-granular set-associative cache models.
//
// GPU L1/L2 caches tag at 128 B line granularity but fill and count
// misses at 32 B *sector* granularity (§2.1, Jia et al. [11]).  The
// paper's Fig. 5 ("L1$ Missed Sectors") and Fig. 18 ("Bytes L2$->L1$")
// are defined in these units, so the model reproduces exactly that:
// a lookup hits iff the line is resident AND the requested sector has
// been filled; a miss fills only the requested sector (no prefetch of
// sibling sectors).
//
// Two front-ends share the line/set logic (detail::SetArray):
//   * SectorCache  — unsynchronized; one per SM as its private L1.
//   * ShardedCache — the device-wide L2, partitioned into address-
//     interleaved slices (slice = set % num_slices) each with its own
//     lock and LRU clock so concurrent SM threads contend only when
//     they touch the same slice.  Slicing is *counter-preserving*: the
//     line -> set mapping is identical to SectorCache's and LRU order
//     within a set depends only on that slice's access order, so a
//     serial access stream produces bit-identical hit/miss results for
//     any slice count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/common/math.hpp"

namespace vsparse::gpusim {

namespace detail {

/// Geometry plus the tag/sector/LRU state shared by both cache
/// front-ends.  Not synchronized; callers serialize access per set
/// (SectorCache globally, ShardedCache per slice).
class SetArray {
 public:
  /// capacity/line/sector in bytes; capacity must be a multiple of
  /// (ways * line_bytes) and line_bytes a power-of-two multiple of
  /// sector_bytes.
  SetArray(std::size_t capacity_bytes, int line_bytes, int sector_bytes,
           int ways);

  /// Access one sector (sector-aligned address) stamping LRU with
  /// `tick`.  Returns true on hit; on miss the sector is filled
  /// (evicting the LRU line of the set if the line was not resident).
  bool access(std::uint64_t sector_addr, std::uint64_t tick);

  /// Invalidate one sector if resident (store coherence).
  void invalidate_sector(std::uint64_t sector_addr);

  /// Drop all contents.
  void flush();

  /// Set index of the line holding `sector_addr` (XOR-folded hash).
  std::size_t set_of_sector(std::uint64_t sector_addr) const {
    return set_index(sector_addr / static_cast<std::uint64_t>(line_bytes_));
  }

  int num_sets() const { return sets_; }
  int ways() const { return ways_; }
  int line_bytes() const { return line_bytes_; }
  int sector_bytes() const { return sector_bytes_; }

 private:
  struct Line {
    std::uint64_t tag = kInvalidTag;
    std::uint32_t sector_valid = 0;  ///< bit i = sector i resident
    std::uint64_t lru = 0;           ///< last-touch tick
  };
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

  Line* find_line(std::uint64_t line_addr, std::size_t set);
  std::size_t set_index(std::uint64_t line_addr) const;

  int line_bytes_;
  int sector_bytes_;
  int sectors_per_line_;
  int ways_;
  int sets_;
  std::vector<Line> lines_;  ///< sets_ * ways_, set-major
};

}  // namespace detail

/// Single-owner cache (the per-SM L1).  Not thread-safe; each SM's L1
/// is only ever touched by the thread executing that SM's CTAs.
class SectorCache {
 public:
  SectorCache(std::size_t capacity_bytes, int line_bytes, int sector_bytes,
              int ways)
      : array_(capacity_bytes, line_bytes, sector_bytes, ways) {}

  /// Access one sector.  `sector_addr` must be sector-aligned.
  /// Returns true on hit; on miss the sector is filled (evicting the
  /// LRU line of the set if the line was not resident).
  bool access(std::uint64_t sector_addr) {
    return array_.access(sector_addr, ++tick_);
  }

  /// Invalidate one sector if resident (used for store coherence).
  void invalidate_sector(std::uint64_t sector_addr) {
    array_.invalidate_sector(sector_addr);
  }

  /// Drop all contents (kernel-boundary invalidation for L1).
  void flush() {
    array_.flush();
    tick_ = 0;
  }

  int num_sets() const { return array_.num_sets(); }
  int ways() const { return array_.ways(); }
  int line_bytes() const { return array_.line_bytes(); }
  int sector_bytes() const { return array_.sector_bytes(); }

 private:
  detail::SetArray array_;
  std::uint64_t tick_ = 0;
};

/// The device-wide L2: the same cache model, sliced for concurrency.
/// Real GPU L2s are physically partitioned into address-interleaved
/// slices; here each slice owns the sets with set % num_slices ==
/// slice_id, guarded by a per-slice mutex so SM threads running on
/// different host threads serialize only within a slice.
class ShardedCache {
 public:
  ShardedCache(std::size_t capacity_bytes, int line_bytes, int sector_bytes,
               int ways, int num_slices);

  /// Thread-safe sector access (locks the owning slice).
  bool access(std::uint64_t sector_addr);

  /// Thread-safe sector invalidation (store coherence).
  void invalidate_sector(std::uint64_t sector_addr);

  /// Drop all contents.  Not concurrency-safe against in-flight
  /// accesses; only called between launches.
  void flush();

  int num_slices() const { return num_slices_; }
  int num_sets() const { return array_.num_sets(); }
  int ways() const { return array_.ways(); }
  int line_bytes() const { return array_.line_bytes(); }
  int sector_bytes() const { return array_.sector_bytes(); }

 private:
  struct Slice {
    std::mutex mu;
    std::uint64_t tick = 0;
  };

  Slice& slice_of_sector(std::uint64_t sector_addr) {
    return slices_[array_.set_of_sector(sector_addr) %
                   static_cast<std::size_t>(num_slices_)];
  }

  detail::SetArray array_;
  int num_slices_;
  std::unique_ptr<Slice[]> slices_;
};

}  // namespace vsparse::gpusim

#include "vsparse/gpusim/costmodel.hpp"

#include <algorithm>
#include <cmath>

namespace vsparse::gpusim {

int ctas_per_sm_limit(const DeviceConfig& dev, const LaunchConfig& cfg) {
  const int warps_per_cta = cfg.cta_threads / 32;
  int limit = dev.max_ctas_per_sm;
  limit = std::min(limit, dev.max_threads_per_sm / cfg.cta_threads);
  limit = std::min(limit, dev.max_warps_per_sm / warps_per_cta);
  const int regs_per_cta = cfg.profile.regs_per_thread * cfg.cta_threads;
  if (regs_per_cta > 0) {
    limit = std::min(limit, dev.regfile_per_sm / regs_per_cta);
  }
  if (cfg.smem_bytes > 0) {
    limit = std::min(limit, static_cast<int>(dev.max_smem_per_cta /
                                             cfg.smem_bytes));
  }
  return std::max(limit, 1);
}

CostEstimate estimate_cost(const DeviceConfig& dev, const LaunchConfig& cfg,
                           const KernelStats& stats, const CostParams& p) {
  CostEstimate e;

  // ---- occupancy / wave structure ------------------------------------
  const int warps_per_cta = cfg.cta_threads / 32;
  e.ctas_per_sm = ctas_per_sm_limit(dev, cfg);
  e.active_warps_per_sm =
      std::min(e.ctas_per_sm * warps_per_cta, dev.max_warps_per_sm);
  const int sms_used = std::min(dev.num_sms, cfg.grid);
  e.waves = static_cast<double>(cfg.grid) /
            (static_cast<double>(e.ctas_per_sm) * dev.num_sms);

  const auto per_sm = [&](std::uint64_t chip_total) {
    return static_cast<double>(chip_total) / sms_used;
  };

  // ---- stall fractions (issue-efficiency model) -----------------------
  const double total_instrs =
      std::max<double>(1.0, static_cast<double>(stats.total_instructions()));

  const double program = cfg.profile.static_instrs;
  if (program > dev.icache_instrs) {
    e.stall_no_instruction =
        std::min(0.65, p.icache_stall_coeff * cfg.profile.icache_pressure *
                           std::pow(program / dev.icache_instrs,
                                    p.icache_stall_exp));
  }
  const double int_share =
      (static_cast<double>(stats.op(Op::kImad)) +
       static_cast<double>(stats.op(Op::kIadd3))) /
      total_instrs;
  e.stall_wait =
      (p.wait_stall_base + p.wait_stall_scale * int_share) *
      cfg.profile.ilp_factor;
  const double smem_share =
      static_cast<double>(stats.op(Op::kLds)) / total_instrs;
  e.stall_short_scoreboard =
      p.smem_stall_scale * smem_share * cfg.profile.ilp_factor;

  double total_stall = e.stall_no_instruction + e.stall_wait +
                       e.stall_short_scoreboard;
  total_stall = std::min(total_stall, p.max_total_stall);

  // Low occupancy exposes latency that TLP would otherwise hide
  // (guideline II).  What matters is the number of warps actually
  // RESIDENT, which a small grid limits below the occupancy bound —
  // §5.1's whole grid-size argument.
  const double resident_warps = std::min<double>(
      e.active_warps_per_sm,
      std::ceil(static_cast<double>(cfg.grid) / sms_used) * warps_per_cta);
  const double tlp = std::min(1.0, resident_warps / p.latency_hiding_warps);
  const double tlp_derate = 0.25 + 0.75 * tlp;
  const double issue_efficiency = 1.0 - total_stall;

  // ---- roofline terms --------------------------------------------------
  e.issue_cycles = per_sm(stats.total_instructions()) /
                   (dev.issue_per_cycle * issue_efficiency);
  e.tcu_cycles = per_sm(stats.op(Op::kHmma)) / dev.hmma_per_cycle;
  e.fma_cycles = per_sm(stats.op(Op::kFfma)) * 32.0 / dev.fma_lanes +
                 per_sm(stats.op(Op::kHfma)) * 32.0 / dev.half_fma_lanes;
  e.alu_cycles = (per_sm(stats.op(Op::kImad)) + per_sm(stats.op(Op::kIadd3)) +
                  per_sm(stats.op(Op::kCvt))) *
                 32.0 / dev.alu_lanes;
  const double mem_requests =
      per_sm(stats.global_load_requests + stats.global_store_requests) +
      per_sm(stats.smem_wavefronts) + per_sm(stats.op(Op::kShfl));
  e.lsu_cycles = mem_requests / dev.lsu_requests_per_cycle;
  e.smem_cycles = per_sm(stats.smem_load_bytes + stats.smem_store_bytes) /
                  dev.smem_bytes_per_cycle;
  const double mlp = std::clamp(cfg.profile.mlp_factor, 0.05, 1.0);
  e.l1_cycles = per_sm(stats.l1_sector_hits + stats.l1_sector_misses +
                       stats.global_store_sectors) /
                (dev.l1_sectors_per_cycle * mlp);
  e.l2_cycles = static_cast<double>((stats.l1_sector_misses +
                                     stats.global_store_sectors) *
                                    32) /
                (dev.l2_bytes_per_cycle_total * mlp);
  e.dram_cycles =
      static_cast<double>(stats.dram_read_bytes + stats.dram_write_bytes) /
      (dev.dram_bytes_per_cycle_total * mlp);

  struct Term {
    const char* name;
    double cycles;
  };
  const Term terms[] = {
      {"issue", e.issue_cycles}, {"tcu", e.tcu_cycles},
      {"fma", e.fma_cycles},     {"alu", e.alu_cycles},
      {"lsu", e.lsu_cycles},     {"smem", e.smem_cycles},
      {"l1", e.l1_cycles},       {"l2", e.l2_cycles},
      {"dram", e.dram_cycles},
  };
  const Term* worst = &terms[0];
  for (const Term& t : terms) {
    if (t.cycles > worst->cycles) worst = &t;
  }
  e.bound_by = worst->name;

  // Fixed launch overhead + a DRAM-latency tail per wave keeps tiny
  // grids from reporting implausibly small durations.
  const double overhead = dev.launch_overhead_cycles +
                          dev.dram_latency * std::max(1.0, std::ceil(e.waves));
  e.cycles = worst->cycles / tlp_derate + overhead;

  // Fig. 5 middle panel: utilization of the busiest compute pipe.
  const double compute_busiest =
      std::max({e.tcu_cycles, e.fma_cycles, e.alu_cycles});
  e.max_compute_pipe_utilization =
      e.cycles > 0 ? compute_busiest / e.cycles : 0.0;

  return e;
}

}  // namespace vsparse::gpusim

// Architectural parameters of the simulated GPU.
//
// Defaults model an NVIDIA Volta V100 (the paper's platform, §2.1 and
// [11] Jia et al.'s microbenchmarking): 80 SMs, 4 sub-cores per SM,
// 64K 32-bit registers per SM, a 128 KiB unified L1/shared-memory slab,
// a 6 MiB L2, 32 B cache sectors, 128 B cache lines / transactions, and
// a 12 KiB L0 instruction cache per sub-core (128-bit instruction words
// -> 768 instructions, the capacity that §3.2 shows Blocked-ELL
// overflowing).
//
// Throughput numbers are in bytes (or instructions) per model cycle and
// feed the CostModel roofline.  All paper results are speedup *ratios*,
// so only the relative balance of these rates matters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vsparse::gpusim {

/// Native MMA instruction shape of the tensor cores (m x n x k per
/// step).  Volta issues HMMA.884 (m8n8k4) — the shape all the paper's
/// octet mappings are built on; Turing/Ampere expose the wider
/// mma.m16n8k8 / m16n8k16 PTX shapes.  The functional kernels always
/// decompose into 884 steps (Ampere emulates them), so this field is
/// dispatch-policy metadata: which kernel mapping wins flips with the
/// shape (the paper's Fig. 15 HMMA-SWITCH study), and the policy cache
/// keys per architecture.
struct MmaShape {
  int m = 8;
  int n = 8;
  int k = 4;
};

struct DeviceConfig {
  // --- architecture identity ------------------------------------------
  /// Stable preset name ("volta-v100", ...).  Keys autotuned dispatch
  /// policies per architecture; hand-modified configs keep the name of
  /// the preset they started from.
  const char* arch = "volta-v100";
  MmaShape mma;  ///< native tensor-core step shape (see above)
  /// The Fig. 15 HMMA...SWITCH proposal: the TCU swaps operand buses on
  /// the inverted-pattern steps at no extra issue cost.  Off on every
  /// shipping part; the "volta-hmma-switch" preset is the paper's
  /// what-if architecture point.
  bool hmma_switch = false;

  // --- SM array -----------------------------------------------------
  int num_sms = 80;
  int subcores_per_sm = 4;
  int max_threads_per_sm = 2048;
  int max_ctas_per_sm = 32;
  int max_warps_per_sm = 64;
  int regfile_per_sm = 64 * 1024;  ///< 32-bit registers
  int max_regs_per_thread = 255;

  // --- memory hierarchy ----------------------------------------------
  std::size_t dram_capacity = std::size_t{2} << 30;  ///< simulated DRAM arena
  std::size_t l1_bytes = 128 << 10;   ///< unified L1 + shared carveout
  std::size_t max_smem_per_cta = 96 << 10;
  std::size_t l2_bytes = 6 << 20;
  int line_bytes = 128;    ///< transaction / cache-line granularity
  int sector_bytes = 32;   ///< fill & miss-count granularity
  int l1_ways = 4;
  int l2_ways = 16;
  /// Concurrency slices of the L2 (real GPUs interleave the L2 across
  /// address-hashed slices; V100 has 32).  Slicing is counter-neutral:
  /// sets are distributed set-index-interleaved across slices, so any
  /// value yields bit-identical hit/miss counts under serial execution
  /// — the slice count only bounds lock contention when the execution
  /// engine runs SMs on multiple host threads.
  int l2_slices = 16;
  int smem_banks = 32;     ///< 4-byte-wide shared-memory banks

  // --- L0 instruction cache (per sub-core) ---------------------------
  int icache_instrs = 768;  ///< 12 KiB / 128-bit instruction words

  // --- throughput model (per SM per cycle unless noted) ---------------
  double hmma_per_cycle = 4.0;      ///< HMMA.884 steps (1 per sub-core)
  double fma_lanes = 64.0;          ///< FP32 FMA lanes (16 per sub-core)
  double half_fma_lanes = 128.0;    ///< FP16 HFMA2 lanes
  double alu_lanes = 64.0;          ///< INT32 lanes (IMAD/IADD3)
  double issue_per_cycle = 4.0;     ///< warp instructions issued (1/sub-core)
  double lsu_requests_per_cycle = 4.0;  ///< LD/ST warp instructions
  double smem_bytes_per_cycle = 128.0;  ///< shared-memory bandwidth
  double l1_sectors_per_cycle = 4.0;    ///< L1 return bandwidth (sectors)
  double l2_bytes_per_cycle_total = 2000.0;  ///< whole-chip L2 bandwidth
  double dram_bytes_per_cycle_total = 650.0; ///< ~900 GB/s at 1.38 GHz

  // --- latency / stall model constants --------------------------------
  double dram_latency = 400.0;     ///< cycles, used for latency-bound tails
  /// Fixed kernel-launch + drain overhead (~0.5 us at 1.38 GHz).  The
  /// paper's wall-clock speedups include it (back-to-back launches), which
  /// what compresses ratios on small problems (e.g. the N = 64 panels).
  double launch_overhead_cycles = 700.0;
  double fixed_latency = 6.0;      ///< ALU dependent-issue latency ("Wait")
  double smem_latency = 24.0;      ///< shared-memory load-to-use ("Short
                                   ///  Scoreboard")
  double icache_refill_cycles = 30.0;  ///< L0 miss service time

  /// The paper's evaluation platform.
  static DeviceConfig volta_v100() { return DeviceConfig{}; }

  /// An Ampere A100 (SXM4 40 GB) variant — an extension beyond the
  /// paper for cross-architecture what-if studies: more SMs, a much
  /// larger L2, double the per-SM L1/shared slab, ~1.7x the DRAM
  /// bandwidth, and 2x the tensor-core step throughput.  The octet
  /// kernels' PTX-level mapping carries over (mma.m8n8k4 is emulated on
  /// Ampere; the bandwidth/capacity ratios are what change the
  /// crossover points).
  static DeviceConfig ampere_a100() {
    DeviceConfig cfg;
    cfg.arch = "ampere-a100";
    cfg.mma = MmaShape{16, 8, 16};
    cfg.num_sms = 108;
    cfg.l1_bytes = 192 << 10;
    cfg.max_smem_per_cta = 164 << 10;
    cfg.l2_bytes = 40 << 20;
    cfg.regfile_per_sm = 64 * 1024;
    cfg.hmma_per_cycle = 8.0;
    cfg.half_fma_lanes = 256.0;
    cfg.dram_bytes_per_cycle_total = 1100.0;  // ~1.55 TB/s at 1.41 GHz
    cfg.l2_bytes_per_cycle_total = 3200.0;
    return cfg;
  }

  /// Look up a named preset from the architecture table (gpusim/
  /// arch.hpp): "volta-v100" | "turing-t4" | "ampere-a100" |
  /// "volta-hmma-switch".  Raises kBadDispatch for unknown names;
  /// `arch_presets()` enumerates the table for CLIs and tests.
  static DeviceConfig preset(std::string_view name);
};

}  // namespace vsparse::gpusim

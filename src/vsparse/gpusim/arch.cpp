#include "vsparse/gpusim/arch.hpp"

#include <string>

#include "vsparse/serve/error.hpp"

namespace vsparse::gpusim {

namespace {

DeviceConfig make_volta() { return DeviceConfig::volta_v100(); }

/// Turing T4 (70 W inference part): half the V100's SM count, a 4 MiB
/// L2 and ~320 GB/s GDDR6 — the bandwidth-starved end of the table,
/// where the low-traffic octet kernel gains ground on dense.  Turing's
/// tensor cores expose mma.m16n8k8; the functional mapping still
/// decomposes into 884 steps, one per sub-core per cycle.
DeviceConfig make_turing_t4() {
  DeviceConfig cfg;
  cfg.arch = "turing-t4";
  cfg.mma = MmaShape{16, 8, 8};
  cfg.num_sms = 40;
  cfg.max_threads_per_sm = 1024;
  cfg.max_warps_per_sm = 32;
  cfg.l1_bytes = 96 << 10;
  cfg.max_smem_per_cta = 64 << 10;
  cfg.l2_bytes = 4 << 20;
  cfg.dram_bytes_per_cycle_total = 210.0;  // ~320 GB/s at 1.59 GHz
  cfg.l2_bytes_per_cycle_total = 1200.0;
  return cfg;
}

DeviceConfig make_ampere() { return DeviceConfig::ampere_a100(); }

/// The paper's Fig. 15 proposal as an architecture point: a V100 whose
/// TCU swaps operand buses on the inverted-pattern HMMA steps
/// (HMMA.884.F32.F32.STEP*.SWITCH).  Everything else matches
/// volta-v100, so any counter difference against it isolates the
/// extension — and kAuto SDDMM picks the free "mma (arch)" variant.
DeviceConfig make_volta_hmma_switch() {
  DeviceConfig cfg;
  cfg.arch = "volta-hmma-switch";
  cfg.hmma_switch = true;
  return cfg;
}

}  // namespace

const std::vector<ArchPreset>& arch_presets() {
  static const std::vector<ArchPreset> kTable = {
      {"volta-v100", "NVIDIA V100: the paper's platform, HMMA.884",
       &make_volta},
      {"turing-t4", "NVIDIA T4: 40 SMs, 4 MiB L2, mma.m16n8k8",
       &make_turing_t4},
      {"ampere-a100", "NVIDIA A100: 108 SMs, 40 MiB L2, mma.m16n8k16",
       &make_ampere},
      {"volta-hmma-switch",
       "V100 + Fig. 15 HMMA...SWITCH (free inverted-pattern fix)",
       &make_volta_hmma_switch},
  };
  return kTable;
}

const ArchPreset* find_arch_preset(std::string_view name) {
  for (const ArchPreset& preset : arch_presets()) {
    if (name == preset.name) return &preset;
  }
  return nullptr;
}

std::string arch_preset_names() {
  std::string out;
  for (const ArchPreset& preset : arch_presets()) {
    if (!out.empty()) out += ", ";
    out += preset.name;
  }
  return out;
}

DeviceConfig DeviceConfig::preset(std::string_view name) {
  const ArchPreset* preset = find_arch_preset(name);
  VSPARSE_CHECK_RAISE(preset != nullptr, ErrorCode::kBadDispatch,
                      "gpusim.arch",
                      "unknown architecture preset \""
                          << std::string(name) << "\" (known: "
                          << arch_preset_names() << ")");
  return preset->make();
}

}  // namespace vsparse::gpusim

// Umbrella header for the execution engine — kept so kernels, tests,
// and downstream users keep a single include for the whole warp-
// synchronous execution surface.  The engine itself is layered under
// engine/:
//
//   engine/lanes.hpp          per-lane register slices (Lanes<T>)
//   engine/launch_config.hpp  KernelProfile + LaunchConfig
//   engine/sim_options.hpp    SimOptions{threads} host execution options
//   engine/sm_context.hpp     per-SM state: L1, smem arena, stats block
//   engine/cta.hpp            Cta / Warp handles kernels program against
//   engine/warp_ops.hpp       ldg/stg/lds/sts/shfl template bodies
//   engine/scheduler.hpp      CTA->SM round-robin + SM->worker claiming
//   engine/thread_pool.hpp    persistent worker pool
//   engine/engine.hpp         run_launch(): validate, shard, merge
//   engine/launch.hpp         the templated launch() entry point
//
// See engine/launch.hpp for the execution and determinism contract.
#pragma once

#include "vsparse/gpusim/engine/cta.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/engine/warp_ops.hpp"

// DEPRECATED umbrella header — the execution engine is layered under
// engine/ and in-tree code now includes the explicit headers it uses:
//
//   engine/lanes.hpp          per-lane register slices (Lanes<T>)
//   engine/launch_config.hpp  KernelProfile + LaunchConfig
//   engine/sim_options.hpp    SimOptions{threads} host execution options
//   engine/sm_context.hpp     per-SM state: L1, smem arena, stats block
//   engine/cta.hpp            Cta / Warp handles kernels program against
//   engine/warp_ops.hpp       ldg/stg/lds/sts/shfl + span template bodies
//   engine/scheduler.hpp      CTA->SM round-robin + SM->worker claiming
//   engine/thread_pool.hpp    persistent worker pool
//   engine/engine.hpp         run_launch(): validate, shard, merge
//   engine/launch.hpp         the templated launch() entry point
//
// This shim keeps downstream single-include users compiling for one
// deprecation cycle; switch to the explicit engine/ headers above.
#pragma once

#pragma message( \
    "vsparse/gpusim/exec.hpp is deprecated; include the explicit " \
    "vsparse/gpusim/engine/*.hpp headers instead (see this header " \
    "for the layering map)")

#include "vsparse/gpusim/engine/cta.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/engine/warp_ops.hpp"

// Warp-synchronous execution engine.
//
// Kernels are written as per-CTA C++ callables operating on `Cta` /
// `Warp` contexts, mirroring the structure of the paper's CUDA kernels:
//
//   launch(dev, cfg, [&](Cta& cta) {
//     Lanes<std::uint64_t> addr; Lanes<half4> frag;
//     ...compute per-lane addresses like the CUDA kernel would...
//     cta.warp(0).ldg(addr, frag);          // coalescing is *measured*
//     mma_m8n8k4(cta.warp(0), a, b, acc);   // octet-level tensor core
//   });
//
// Execution is serial and deterministic: CTAs run to completion in
// launch order, round-robin assigned to model SMs (whose L1s they
// share), and warps within a CTA run phase-by-phase — `Cta::sync()`
// marks barrier boundaries, and kernels are written in the phased style
// (loop over warps per phase) so producer/consumer shared-memory
// patterns remain correct under serial warp execution.
//
// Every memory operation performs the real data movement *and* records
// the hardware events (requests, 32 B sectors, L1/L2 hits, bank
// conflicts) that the paper's profiling sections analyze.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "vsparse/common/macros.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/stats.hpp"

namespace vsparse::gpusim {

/// Per-lane register file slice: one value per lane of a 32-lane warp.
template <class T>
using Lanes = std::array<T, 32>;

using AddrLanes = Lanes<std::uint64_t>;

inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Static (compile-time) properties of a kernel, the inputs to the
/// occupancy and instruction-cache terms of the cost model.  Kernels
/// compute these from their tiling parameters with documented formulas
/// calibrated against the SASS statistics the paper reports (§7.2.2:
/// FPU baseline 3776/6968 SASS lines vs 384/416 for the octet kernel).
struct KernelProfile {
  std::string name = "kernel";
  int regs_per_thread = 32;
  int static_instrs = 256;  ///< estimated SASS program size (instructions)
  /// Multiplier on instruction-cache pressure: >1 for kernels with
  /// irregular control flow that re-fetches the overflowed program body
  /// every iteration (the Blocked-ELL library kernel of §3.2).
  double icache_pressure = 1.0;
  /// Multiplier on fixed-latency dependency stalls ("Wait"); the §5.4
  /// batched-loads-then-batched-MMAs trick lowers it below 1.
  double ilp_factor = 1.0;
  /// Memory-level parallelism: fraction of peak cache/DRAM bandwidth a
  /// warp's outstanding loads can sustain.  Serialized load-use chains
  /// (the compiler register-reuse problem §5.4 fixes) push it below 1.
  double mlp_factor = 1.0;
};

/// Grid/CTA shape of a launch.
struct LaunchConfig {
  int grid = 1;               ///< number of CTAs (1-D; kernels derive 2-D)
  int cta_threads = 32;       ///< multiple of 32, <= 1024
  std::size_t smem_bytes = 0; ///< static shared memory per CTA
  KernelProfile profile;
};

class Cta;

/// Handle through which kernel code issues warp-level operations.
class Warp {
 public:
  Warp(Cta* cta, int warp_id) : cta_(cta), warp_id_(warp_id) {}

  int warp_id() const { return warp_id_; }

  /// Manual instruction accounting for work the C++ body does implicitly
  /// (address arithmetic -> IMAD/IADD3, predicate logic -> MISC...).
  /// Placed where the corresponding CUDA kernel would execute them.
  void count(Op op, std::uint64_t n = 1);

  /// Global load: each active lane reads a naturally-aligned value of
  /// type V from its device address.  sizeof(V) in {2,4,8,16} selects
  /// LDG.{16,32,64,128}.  Coalescing (unique 32 B sectors across the
  /// warp) is measured, then the L1 (this SM) and L2 models are walked.
  template <class V>
  void ldg(const AddrLanes& addr, Lanes<V>& dst,
           std::uint32_t mask = kFullMask);

  /// Global store: write-through to DRAM via L2; L1 bypassed (Volta
  /// global stores do not allocate in L1).
  template <class V>
  void stg(const AddrLanes& addr, const Lanes<V>& src,
           std::uint32_t mask = kFullMask);

  /// Shared-memory load/store; `off` are byte offsets into CTA smem.
  /// Bank conflicts (32 banks x 4 B) expand into extra wavefronts.
  template <class V>
  void lds(const Lanes<std::uint32_t>& off, Lanes<V>& dst,
           std::uint32_t mask = kFullMask);
  template <class V>
  void sts(const Lanes<std::uint32_t>& off, const Lanes<V>& src,
           std::uint32_t mask = kFullMask);

  /// Warp shuffle: dst[lane] = src[srclane[lane]] for active lanes.
  template <class T>
  void shfl(Lanes<T>& dst, const Lanes<T>& src, const Lanes<int>& srclane,
            std::uint32_t mask = kFullMask);

  /// dst[lane] = src[lane ^ xor_mask] (butterfly reduction step).
  template <class T>
  void shfl_xor(Lanes<T>& dst, const Lanes<T>& src, int xor_mask,
                std::uint32_t mask = kFullMask);

  /// __threadfence_block(): the §5.4 ILP trick uses this to separate the
  /// load batch from the MMA batch.  Counted as a MEMBAR issue slot.
  void fence();

  Cta& cta() { return *cta_; }

 private:
  KernelStats& stats();
  Device& device();
  int sm_id() const;

  Cta* cta_;
  int warp_id_;
};

/// Per-CTA execution context: identity, shared memory, warp handles.
class Cta {
 public:
  Cta(Device* dev, KernelStats* stats, const LaunchConfig* cfg, int cta_id,
      int sm_id, std::byte* smem)
      : dev_(dev),
        stats_(stats),
        cfg_(cfg),
        cta_id_(cta_id),
        sm_id_(sm_id),
        smem_(smem) {}

  int cta_id() const { return cta_id_; }
  int num_ctas() const { return cfg_->grid; }
  int sm_id() const { return sm_id_; }
  int num_warps() const { return cfg_->cta_threads / 32; }

  Warp warp(int w) {
    VSPARSE_DCHECK(w >= 0 && w < num_warps());
    return Warp(this, w);
  }

  /// Run `fn(Warp&)` for every warp of the CTA (one execution phase).
  template <class F>
  void for_each_warp(F&& fn) {
    for (int w = 0; w < num_warps(); ++w) {
      Warp wp(this, w);
      fn(wp);
    }
  }

  /// __syncthreads(): counted once per warp.
  void sync() { stats_->op(Op::kBar) += static_cast<std::uint64_t>(num_warps()); }

  /// Raw shared-memory storage (kernels address it via lds/sts offsets;
  /// this pointer backs those accesses).
  std::byte* smem() { return smem_; }
  std::size_t smem_bytes() const { return cfg_->smem_bytes; }

  Device& device() { return *dev_; }
  KernelStats& stats() { return *stats_; }

 private:
  Device* dev_;
  KernelStats* stats_;
  const LaunchConfig* cfg_;
  int cta_id_;
  int sm_id_;
  std::byte* smem_;
};

inline KernelStats& Warp::stats() { return cta_->stats(); }
inline Device& Warp::device() { return cta_->device(); }
inline int Warp::sm_id() const { return cta_->sm_id(); }

inline void Warp::count(Op op, std::uint64_t n) { stats().op(op) += n; }

inline void Warp::fence() { count(Op::kBar); }

namespace detail {

/// Collects the unique 32 B sectors touched by one warp memory request.
/// Naturally-aligned accesses of size <= 32 B touch exactly one sector
/// per lane, so at most 32 entries.
class SectorSet {
 public:
  void insert(std::uint64_t sector) {
    for (int i = 0; i < n_; ++i) {
      if (sectors_[i] == sector) return;
    }
    sectors_[n_++] = sector;
  }
  int size() const { return n_; }
  std::uint64_t operator[](int i) const { return sectors_[i]; }

 private:
  std::uint64_t sectors_[32];
  int n_ = 0;
};

}  // namespace detail

template <class V>
void Warp::ldg(const AddrLanes& addr, Lanes<V>& dst, std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  KernelStats& s = stats();
  s.op(Op::kLdg) += 1;
  if constexpr (sizeof(V) == 2) {
    ++s.ldg16;
  } else if constexpr (sizeof(V) == 4) {
    ++s.ldg32;
  } else if constexpr (sizeof(V) == 8) {
    ++s.ldg64;
  } else {
    ++s.ldg128;
  }
  if (mask == 0) return;

  Device& dev = device();
  detail::SectorSet sectors;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t a = addr[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(a % sizeof(V) == 0);  // natural alignment, as CUDA requires
    std::memcpy(&dst[static_cast<std::size_t>(lane)],
                dev.translate(a, sizeof(V)), sizeof(V));
    sectors.insert(a & ~std::uint64_t{31});
  }
  s.global_load_requests += 1;
  s.global_load_sectors += static_cast<std::uint64_t>(sectors.size());
  SectorCache& l1 = dev.l1(sm_id());
  SectorCache& l2 = dev.l2();
  for (int i = 0; i < sectors.size(); ++i) {
    if (l1.access(sectors[i])) {
      ++s.l1_sector_hits;
    } else {
      ++s.l1_sector_misses;
      if (l2.access(sectors[i])) {
        ++s.l2_sector_hits;
      } else {
        ++s.l2_sector_misses;
        s.dram_read_bytes += 32;
      }
    }
  }
}

template <class V>
void Warp::stg(const AddrLanes& addr, const Lanes<V>& src,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  KernelStats& s = stats();
  s.op(Op::kStg) += 1;
  if (mask == 0) return;

  Device& dev = device();
  detail::SectorSet sectors;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t a = addr[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(a % sizeof(V) == 0);
    std::memcpy(dev.translate(a, sizeof(V)),
                &src[static_cast<std::size_t>(lane)], sizeof(V));
    sectors.insert(a & ~std::uint64_t{31});
  }
  s.global_store_requests += 1;
  s.global_store_sectors += static_cast<std::uint64_t>(sectors.size());
  SectorCache& l1 = dev.l1(sm_id());
  SectorCache& l2 = dev.l2();
  for (int i = 0; i < sectors.size(); ++i) {
    l1.invalidate_sector(sectors[i]);  // keep L1 coherent with the store
    if (!l2.access(sectors[i])) {
      ++s.l2_sector_misses;
      s.dram_write_bytes += 32;
    } else {
      ++s.l2_sector_hits;
    }
  }
}

template <class V>
void Warp::lds(const Lanes<std::uint32_t>& off, Lanes<V>& dst,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  KernelStats& s = stats();
  s.op(Op::kLds) += 1;
  if (mask == 0) return;
  s.smem_load_requests += 1;

  // Bank-conflict model: lanes whose first 4 B word maps to the same
  // bank but a *different* word serialize; same word broadcasts.
  int bank_word[32];
  int bank_count[32] = {};
  int lanes_active = 0;
  std::byte* smem = cta_->smem();
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint32_t o = off[static_cast<std::size_t>(lane)];
    VSPARSE_CHECK_MSG(o + sizeof(V) <= cta_->smem_bytes(),
                      "smem OOB load at offset " << o);
    std::memcpy(&dst[static_cast<std::size_t>(lane)], smem + o, sizeof(V));
    const int word = static_cast<int>(o / 4);
    const int bank = word % 32;
    // Count distinct words per bank (approximate: treat each lane's
    // first word as its bank access).
    bool dup = false;
    for (int l2i = 0; l2i < lanes_active; ++l2i) {
      if (bank_word[l2i] == word) {
        dup = true;
        break;
      }
    }
    bank_word[lanes_active++] = word;
    if (!dup) ++bank_count[bank];
  }
  int degree = 1;
  for (int b = 0; b < 32; ++b) degree = std::max(degree, bank_count[b]);
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts +=
      static_cast<std::uint64_t>(degree) * static_cast<std::uint64_t>(width_factor);
  s.smem_load_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

template <class V>
void Warp::sts(const Lanes<std::uint32_t>& off, const Lanes<V>& src,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  KernelStats& s = stats();
  s.op(Op::kSts) += 1;
  if (mask == 0) return;
  s.smem_store_requests += 1;

  std::byte* smem = cta_->smem();
  int lanes_active = 0;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint32_t o = off[static_cast<std::size_t>(lane)];
    VSPARSE_CHECK_MSG(o + sizeof(V) <= cta_->smem_bytes(),
                      "smem OOB store at offset " << o);
    std::memcpy(smem + o, &src[static_cast<std::size_t>(lane)], sizeof(V));
    ++lanes_active;
  }
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts += static_cast<std::uint64_t>(width_factor);
  s.smem_store_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

template <class T>
void Warp::shfl(Lanes<T>& dst, const Lanes<T>& src, const Lanes<int>& srclane,
                std::uint32_t mask) {
  count(Op::kShfl);
  Lanes<T> tmp;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) {
      tmp[static_cast<std::size_t>(lane)] = dst[static_cast<std::size_t>(lane)];
      continue;
    }
    const int sl = srclane[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(sl >= 0 && sl < 32);
    tmp[static_cast<std::size_t>(lane)] = src[static_cast<std::size_t>(sl)];
  }
  dst = tmp;
}

template <class T>
void Warp::shfl_xor(Lanes<T>& dst, const Lanes<T>& src, int xor_mask,
                    std::uint32_t mask) {
  Lanes<int> srclane;
  for (int lane = 0; lane < 32; ++lane) {
    srclane[static_cast<std::size_t>(lane)] = lane ^ xor_mask;
  }
  shfl(dst, src, srclane, mask);
}

/// Execute a kernel: `body(Cta&)` runs once per CTA.  Returns the
/// hardware counters for the launch.  L1s are invalidated at launch
/// start (kernel-boundary semantics); L2 persists across launches.
template <class Body>
KernelStats launch(Device& dev, const LaunchConfig& cfg, Body&& body) {
  VSPARSE_CHECK(cfg.grid >= 1);
  VSPARSE_CHECK(cfg.cta_threads >= 32 && cfg.cta_threads <= 1024 &&
                cfg.cta_threads % 32 == 0);
  VSPARSE_CHECK(cfg.smem_bytes <= dev.config().max_smem_per_cta);
  VSPARSE_CHECK(cfg.profile.regs_per_thread <=
                dev.config().max_regs_per_thread);

  dev.flush_l1();
  KernelStats stats;
  stats.ctas_launched = static_cast<std::uint64_t>(cfg.grid);
  stats.warps_launched =
      static_cast<std::uint64_t>(cfg.grid) *
      static_cast<std::uint64_t>(cfg.cta_threads / 32);

  std::vector<std::byte> smem(cfg.smem_bytes);
  for (int cta_id = 0; cta_id < cfg.grid; ++cta_id) {
    const int sm = cta_id % dev.config().num_sms;
    if (!smem.empty()) std::memset(smem.data(), 0, smem.size());
    Cta cta(&dev, &stats, &cfg, cta_id, sm, smem.data());
    body(cta);
  }
  return stats;
}

}  // namespace vsparse::gpusim

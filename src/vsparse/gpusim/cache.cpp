#include "vsparse/gpusim/cache.hpp"

#include <algorithm>

namespace vsparse::gpusim {

namespace detail {

SetArray::SetArray(std::size_t capacity_bytes, int line_bytes,
                   int sector_bytes, int ways)
    : line_bytes_(line_bytes),
      sector_bytes_(sector_bytes),
      sectors_per_line_(line_bytes / sector_bytes),
      ways_(ways) {
  VSPARSE_CHECK(is_pow2(static_cast<std::uint64_t>(line_bytes)));
  VSPARSE_CHECK(is_pow2(static_cast<std::uint64_t>(sector_bytes)));
  VSPARSE_CHECK(line_bytes % sector_bytes == 0);
  VSPARSE_CHECK(sectors_per_line_ <= 32);
  VSPARSE_CHECK(ways >= 1);
  const std::size_t lines = capacity_bytes / static_cast<std::size_t>(line_bytes);
  VSPARSE_CHECK(lines % static_cast<std::size_t>(ways) == 0);
  sets_ = static_cast<int>(lines / static_cast<std::size_t>(ways));
  VSPARSE_CHECK(sets_ >= 1);
  const auto usets = static_cast<std::uint64_t>(sets_);
  if ((usets & (usets - 1)) == 0) sets_mask_ = usets - 1;
  sets_magic_ = ~std::uint64_t{0} / usets + 1;  // ceil(2^64 / sets_)
  tags_.assign(lines, kInvalidTag);
  valid_.assign(lines, 0);
  lru_.assign(lines, 0);
}

void SetArray::flush() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(valid_.begin(), valid_.end(), 0u);
  std::fill(lru_.begin(), lru_.end(), std::uint64_t{0});
}

}  // namespace detail

ShardedCache::ShardedCache(std::size_t capacity_bytes, int line_bytes,
                           int sector_bytes, int ways, int num_slices)
    : array_(capacity_bytes, line_bytes, sector_bytes, ways),
      num_slices_(num_slices) {
  VSPARSE_CHECK(num_slices >= 1);
  const auto uslices = static_cast<std::size_t>(num_slices);
  if ((uslices & (uslices - 1)) == 0) slice_mask_ = uslices - 1;
  slices_ = std::make_unique<Slice[]>(uslices);
}

void ShardedCache::flush() {
  array_.flush();
  for (int s = 0; s < num_slices_; ++s) slices_[static_cast<std::size_t>(s)].tick = 0;
}

}  // namespace vsparse::gpusim

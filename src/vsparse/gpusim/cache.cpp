#include "vsparse/gpusim/cache.hpp"

namespace vsparse::gpusim {

namespace detail {

SetArray::SetArray(std::size_t capacity_bytes, int line_bytes,
                   int sector_bytes, int ways)
    : line_bytes_(line_bytes),
      sector_bytes_(sector_bytes),
      sectors_per_line_(line_bytes / sector_bytes),
      ways_(ways) {
  VSPARSE_CHECK(is_pow2(static_cast<std::uint64_t>(line_bytes)));
  VSPARSE_CHECK(is_pow2(static_cast<std::uint64_t>(sector_bytes)));
  VSPARSE_CHECK(line_bytes % sector_bytes == 0);
  VSPARSE_CHECK(sectors_per_line_ <= 32);
  VSPARSE_CHECK(ways >= 1);
  const std::size_t lines = capacity_bytes / static_cast<std::size_t>(line_bytes);
  VSPARSE_CHECK(lines % static_cast<std::size_t>(ways) == 0);
  sets_ = static_cast<int>(lines / static_cast<std::size_t>(ways));
  VSPARSE_CHECK(sets_ >= 1);
  lines_.resize(lines);
}

SetArray::Line* SetArray::find_line(std::uint64_t line_addr, std::size_t set) {
  Line* base = &lines_[set * static_cast<std::size_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == line_addr) return &base[w];
  }
  return nullptr;
}

std::size_t SetArray::set_index(std::uint64_t line_addr) const {
  // XOR-folded set hashing, as GPU caches use: without it, power-of-two
  // strides (e.g. the 512 B row stride of a 256-column half matrix)
  // alias a handful of sets and the effective capacity collapses.
  std::uint64_t h = line_addr;
  h ^= h >> 8;
  h ^= h >> 16;
  return static_cast<std::size_t>(h % static_cast<std::uint64_t>(sets_));
}

bool SetArray::access(std::uint64_t sector_addr, std::uint64_t tick) {
  VSPARSE_DCHECK(sector_addr % static_cast<std::uint64_t>(sector_bytes_) == 0);
  const std::uint64_t line_addr =
      sector_addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t set = set_index(line_addr);
  const int sector_idx = static_cast<int>(
      (sector_addr / static_cast<std::uint64_t>(sector_bytes_)) %
      static_cast<std::uint64_t>(sectors_per_line_));
  const std::uint32_t sector_bit = 1u << sector_idx;

  if (Line* line = find_line(line_addr, set)) {
    line->lru = tick;
    if (line->sector_valid & sector_bit) return true;
    line->sector_valid |= sector_bit;  // sector miss, line resident
    return false;
  }

  // Line miss: evict the LRU way of the set, install with one sector.
  Line* base = &lines_[set * static_cast<std::size_t>(ways_)];
  Line* victim = base;
  for (int w = 1; w < ways_; ++w) {
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  victim->tag = line_addr;
  victim->sector_valid = sector_bit;
  victim->lru = tick;
  return false;
}

void SetArray::invalidate_sector(std::uint64_t sector_addr) {
  const std::uint64_t line_addr =
      sector_addr / static_cast<std::uint64_t>(line_bytes_);
  const std::size_t set = set_index(line_addr);
  if (Line* line = find_line(line_addr, set)) {
    const int sector_idx = static_cast<int>(
        (sector_addr / static_cast<std::uint64_t>(sector_bytes_)) %
        static_cast<std::uint64_t>(sectors_per_line_));
    line->sector_valid &= ~(1u << sector_idx);
    if (line->sector_valid == 0) line->tag = kInvalidTag;
  }
}

void SetArray::flush() {
  for (Line& line : lines_) line = Line{};
}

}  // namespace detail

ShardedCache::ShardedCache(std::size_t capacity_bytes, int line_bytes,
                           int sector_bytes, int ways, int num_slices)
    : array_(capacity_bytes, line_bytes, sector_bytes, ways),
      num_slices_(num_slices) {
  VSPARSE_CHECK(num_slices >= 1);
  slices_ = std::make_unique<Slice[]>(static_cast<std::size_t>(num_slices));
}

bool ShardedCache::access(std::uint64_t sector_addr) {
  Slice& slice = slice_of_sector(sector_addr);
  std::lock_guard<std::mutex> lock(slice.mu);
  // Per-slice LRU clock: within a set (which belongs to exactly one
  // slice) ticks are monotone in access order, so LRU decisions match
  // a single global clock — slicing never changes serial counters.
  return array_.access(sector_addr, ++slice.tick);
}

void ShardedCache::invalidate_sector(std::uint64_t sector_addr) {
  Slice& slice = slice_of_sector(sector_addr);
  std::lock_guard<std::mutex> lock(slice.mu);
  array_.invalidate_sector(sector_addr);
}

void ShardedCache::flush() {
  array_.flush();
  for (int s = 0; s < num_slices_; ++s) slices_[static_cast<std::size_t>(s)].tick = 0;
}

}  // namespace vsparse::gpusim

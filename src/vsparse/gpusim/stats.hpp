// Per-launch hardware counters.
//
// These are the quantities nsight-compute reports and the paper's
// analysis is written in terms of: executed-instruction histogram
// (HMMA vs HMUL+FADD vs integer address arithmetic, §3.1/§7.2.2),
// global-memory sectors & requests ("Sectors/Req", Tables 2-3), L1
// missed sectors (Fig. 5), bytes moved L2->L1 (Fig. 18), and
// shared-memory traffic (the "Short Scoreboard" analysis of §3.2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace vsparse::gpusim {

/// Instruction classes tracked by the simulator.  Counts are
/// *warp-level executed instructions* (one issue slot each), matching
/// what nsight's instruction statistics report.
enum class Op : std::uint8_t {
  kHmma = 0,   ///< HMMA.884 step (tensor core)
  kHfma,       ///< HFMA2 / HMUL (fp16 FPU math)
  kFfma,       ///< FFMA / FADD / FMUL (fp32 FPU math)
  kImad,       ///< IMAD (integer multiply-add, address arithmetic)
  kIadd3,      ///< IADD3 (3-input integer add)
  kLdg,        ///< global load (any width; width histogram kept separately)
  kStg,        ///< global store
  kLds,        ///< shared-memory load
  kSts,        ///< shared-memory store
  kShfl,       ///< warp shuffle
  kBar,        ///< barrier / memory fence
  kCvt,        ///< precision conversion (F2F.F32.F16 etc.)
  kMisc,       ///< everything else (predicates, branches, moves)
  kNumOps
};

constexpr int kNumOps = static_cast<int>(Op::kNumOps);

/// Human-readable mnemonic for an Op.
const char* op_name(Op op);

/// Counter block filled in while a kernel executes on the simulator.
struct KernelStats {
  // --- executed instructions (warp level) -----------------------------
  std::uint64_t ops[kNumOps] = {};

  // --- global-load width histogram (guideline V) ----------------------
  std::uint64_t ldg16 = 0;   ///< 16-bit per-thread loads
  std::uint64_t ldg32 = 0;   ///< LDG.32
  std::uint64_t ldg64 = 0;   ///< LDG.64
  std::uint64_t ldg128 = 0;  ///< LDG.128

  // --- global memory traffic ------------------------------------------
  std::uint64_t global_load_requests = 0;   ///< warp-level LDG requests
  std::uint64_t global_load_sectors = 0;    ///< 32B sectors touched
  std::uint64_t global_store_requests = 0;
  std::uint64_t global_store_sectors = 0;
  std::uint64_t l1_sector_hits = 0;
  std::uint64_t l1_sector_misses = 0;   ///< "L1$ Missed Sectors" (Fig. 5)
  std::uint64_t l2_sector_hits = 0;
  std::uint64_t l2_sector_misses = 0;
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;

  // --- shared memory ---------------------------------------------------
  std::uint64_t smem_load_requests = 0;
  std::uint64_t smem_store_requests = 0;
  std::uint64_t smem_load_bytes = 0;
  std::uint64_t smem_store_bytes = 0;
  std::uint64_t smem_wavefronts = 0;  ///< bank-conflict-expanded accesses

  // --- launch shape ------------------------------------------------------
  std::uint64_t ctas_launched = 0;
  std::uint64_t warps_launched = 0;

  // --- fault injection (gpusim/faults.hpp; all zero with no FaultPlan) --
  std::uint64_t faults_injected = 0;  ///< upsets applied to read data
  std::uint64_t faults_masked = 0;    ///< ECC-corrected single-bit upsets
  std::uint64_t faults_detected = 0;  ///< ECC double-bit detections (EccError)

  std::uint64_t& op(Op o) { return ops[static_cast<int>(o)]; }
  std::uint64_t op(Op o) const { return ops[static_cast<int>(o)]; }

  /// Total executed warp instructions across all classes.
  std::uint64_t total_instructions() const;

  /// Math instructions (HMMA + HFMA + FFMA), the Fig. 5 right panel.
  std::uint64_t math_instructions() const;

  /// Bytes transferred from L2 to L1 = missed sectors * 32 B (Fig. 18).
  std::uint64_t bytes_l2_to_l1() const { return l1_sector_misses * 32; }

  /// Average sectors per global load request ("Sectors/Req", Tables 2-3).
  double sectors_per_request() const;

  /// Ratio of shared-memory to global load requests (§3.2's
  /// "smem load requests / global load requests" diagnostic).
  double smem_to_global_load_ratio() const;

  /// Element-wise accumulate (for multi-kernel pipelines, and the
  /// engine's per-SM -> per-launch merge; uint64 sums make the merge
  /// order-independent).
  KernelStats& operator+=(const KernelStats& other);

  /// Equality over the SM-local counters: everything except the L2
  /// hit/miss split and DRAM bytes.  Those four depend on how
  /// concurrent SMs interleave in the shared L2, so they are the only
  /// fields the engine's determinism contract excludes for thread
  /// counts > 1 (at threads == 1 they are bit-exact too).
  bool sm_local_equal(const KernelStats& other) const;

  /// Multi-line human-readable dump.
  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const KernelStats& s);

}  // namespace vsparse::gpusim

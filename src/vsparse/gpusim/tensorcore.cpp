#include "vsparse/gpusim/tensorcore.hpp"

#include <bit>
#include <cstring>

namespace vsparse::gpusim {

namespace {

/// Lane index of the j-th thread (0..3) of the low/high group of octet o.
constexpr int octet_lane(int octet, int j, bool high) {
  return (high ? 16 : 0) + 4 * octet + j;
}

}  // namespace

void mma_m8n8k4(Warp& w, const MmaFragAB& a, const MmaFragAB& b, MmaFragC& c,
                MmaFlags flags) {
  w.count(Op::kHmma,
          static_cast<std::uint64_t>(std::popcount(flags.step_mask & 0xFu)));

  // Effective source fragments: SWITCH exchanges the Mat_a sources of
  // groups i and i+4 and inverts the Mat_b mux, which is equivalent to
  // swapping the low/high halves of both fragments (header comment).
  const MmaFragAB* ea = &a;
  const MmaFragAB* eb = &b;
  MmaFragAB swapped_a, swapped_b;
  if (FaultState* faults = w.cta().sm().faults(); faults != nullptr)
      [[unlikely]] {
    // Register-fragment upset: corrupt local copies of the operands so
    // the fault is confined to this MMA, like a real register flip.
    swapped_a = a;
    swapped_b = b;
    faults->on_mma_frags(swapped_a.data(), sizeof(MmaFragAB),
                         swapped_b.data(), sizeof(MmaFragAB),
                         w.cta().stats());
    ea = &swapped_a;
    eb = &swapped_b;
    if (flags.switch_groups) {
      for (int lane = 0; lane < 16; ++lane) {
        std::swap(swapped_a[static_cast<std::size_t>(lane)],
                  swapped_a[static_cast<std::size_t>(lane + 16)]);
        std::swap(swapped_b[static_cast<std::size_t>(lane)],
                  swapped_b[static_cast<std::size_t>(lane + 16)]);
      }
    }
  } else if (flags.switch_groups) {
    swapped_a = a;
    swapped_b = b;
    for (int lane = 0; lane < 16; ++lane) {
      std::swap(swapped_a[static_cast<std::size_t>(lane)],
                swapped_a[static_cast<std::size_t>(lane + 16)]);
      std::swap(swapped_b[static_cast<std::size_t>(lane)],
                swapped_b[static_cast<std::size_t>(lane + 16)]);
    }
    ea = &swapped_a;
    eb = &swapped_b;
  }

  for (int octet = 0; octet < 4; ++octet) {
    for (int step = 0; step < 4; ++step) {
      if (!(flags.step_mask & (1u << step))) continue;
      const bool rows_high = (step == 1 || step == 3);
      const bool cols_high = (step >= 2);
      const int col_base = cols_high ? 4 : 0;
      for (int r = 0; r < 4; ++r) {
        const int row_lane = octet_lane(octet, r, rows_high);
        const half4& arow = (*ea)[static_cast<std::size_t>(row_lane)];
        // The accumulator for this output row lives in the lane that
        // sourced the A row in the *unswitched* layout: the destination
        // (Acc buffer) is per thread group and is not switched.
        auto& crow = c[static_cast<std::size_t>(row_lane)];
        for (int col = 0; col < 4; ++col) {
          const int col_lane = octet_lane(octet, col, cols_high);
          const half4& bcol = (*eb)[static_cast<std::size_t>(col_lane)];
          float sum = 0.0f;
          for (int k = 0; k < 4; ++k) {
            sum += static_cast<float>(arow[k]) * static_cast<float>(bcol[k]);
          }
          crow[static_cast<std::size_t>(col_base + col)] += sum;
        }
      }
    }
  }
}

void wmma_m8n32k16(Warp& w, const half_t (&a)[8][16],
                   const half_t (&b)[16][32], float (&c)[8][32]) {
  // (8*32*16) MACs / (8*4*4 per HMMA.884 step * 4 octets / 4 steps):
  // the hardware instruction decomposes into 16 HMMA steps.
  w.count(Op::kHmma, 16);
  const half_t(*ea)[16] = a;
  const half_t(*eb)[32] = b;
  half_t fa[8][16], fb[16][32];
  if (FaultState* faults = w.cta().sm().faults(); faults != nullptr)
      [[unlikely]] {
    // Register-fragment upset on local operand copies (see mma_m8n8k4).
    std::memcpy(fa, a, sizeof(fa));
    std::memcpy(fb, b, sizeof(fb));
    faults->on_mma_frags(fa, sizeof(fa), fb, sizeof(fb), w.cta().stats());
    ea = fa;
    eb = fb;
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 32; ++j) {
      float sum = 0.0f;
      for (int k = 0; k < 16; ++k) {
        sum += static_cast<float>(ea[i][k]) * static_cast<float>(eb[k][j]);
      }
      c[i][j] += sum;
    }
  }
}

}  // namespace vsparse::gpusim

#include "vsparse/gpusim/tensorcore.hpp"

#include <bit>
#include <cstring>

namespace vsparse::gpusim {

namespace {

/// Lane index of the j-th thread (0..3) of the low/high group of octet o.
constexpr int octet_lane(int octet, int j, bool high) {
  return (high ? 16 : 0) + 4 * octet + j;
}

}  // namespace

void Warp::mma_m8n8k4(const MmaFragAB& a, const MmaFragAB& b, MmaFragC& c,
                      MmaFlags flags) {
  count(Op::kHmma,
          static_cast<std::uint64_t>(std::popcount(flags.step_mask & 0xFu)));

  // Effective source fragments: SWITCH exchanges the Mat_a sources of
  // groups i and i+4 and inverts the Mat_b mux, which is equivalent to
  // swapping the low/high halves of both fragments (header comment).
  const MmaFragAB* ea = &a;
  const MmaFragAB* eb = &b;
  MmaFragAB swapped_a, swapped_b;
  if (FaultState* faults = sm().faults(); faults != nullptr)
      [[unlikely]] {
    // Register-fragment upset: corrupt local copies of the operands so
    // the fault is confined to this MMA, like a real register flip.
    swapped_a = a;
    swapped_b = b;
    faults->on_mma_frags(swapped_a.data(), sizeof(MmaFragAB),
                         swapped_b.data(), sizeof(MmaFragAB),
                         stats());
    ea = &swapped_a;
    eb = &swapped_b;
    if (flags.switch_groups) {
      for (int lane = 0; lane < 16; ++lane) {
        std::swap(swapped_a[static_cast<std::size_t>(lane)],
                  swapped_a[static_cast<std::size_t>(lane + 16)]);
        std::swap(swapped_b[static_cast<std::size_t>(lane)],
                  swapped_b[static_cast<std::size_t>(lane + 16)]);
      }
    }
  } else if (flags.switch_groups) {
    swapped_a = a;
    swapped_b = b;
    for (int lane = 0; lane < 16; ++lane) {
      std::swap(swapped_a[static_cast<std::size_t>(lane)],
                swapped_a[static_cast<std::size_t>(lane + 16)]);
      std::swap(swapped_b[static_cast<std::size_t>(lane)],
                swapped_b[static_cast<std::size_t>(lane + 16)]);
    }
    ea = &swapped_a;
    eb = &swapped_b;
  }

  // Widen both fragments once (half -> float is exact, so hoisting the
  // conversions out of the MAC loops cannot change any product); the
  // per-output fold over k keeps the naive loop's order, so results are
  // bit-identical to converting inside the innermost loop.
  // Flatten through a byte copy (half4 lanes are contiguous, but
  // indexing across the 4-element inner arrays directly would be UB).
  half_t ha[128], hb[128];
  static_assert(sizeof(ha) == sizeof(MmaFragAB));
  std::memcpy(static_cast<void*>(ha), static_cast<const void*>(ea->data()),
              sizeof(ha));
  std::memcpy(static_cast<void*>(hb), static_cast<const void*>(eb->data()),
              sizeof(hb));
  float wa[128], wb[128];  // lane-major: wa[4*lane + k]
  half_to_float_n(ha, wa, 128);
  half_to_float_n(hb, wb, 128);
  for (int octet = 0; octet < 4; ++octet) {
    for (int step = 0; step < 4; ++step) {
      if (!(flags.step_mask & (1u << step))) continue;
      const bool rows_high = (step == 1 || step == 3);
      const bool cols_high = (step >= 2);
      const int col_base = cols_high ? 4 : 0;
      for (int r = 0; r < 4; ++r) {
        const int row_lane = octet_lane(octet, r, rows_high);
        const float* arow = wa + 4 * row_lane;
        // The accumulator for this output row lives in the lane that
        // sourced the A row in the *unswitched* layout: the destination
        // (Acc buffer) is per thread group and is not switched.
        auto& crow = c[static_cast<std::size_t>(row_lane)];
        for (int col = 0; col < 4; ++col) {
          const int col_lane = octet_lane(octet, col, cols_high);
          const float* bcol = wb + 4 * col_lane;
          float sum = 0.0f;
          for (int k = 0; k < 4; ++k) {
            sum += arow[k] * bcol[k];
          }
          crow[static_cast<std::size_t>(col_base + col)] += sum;
        }
      }
    }
  }
}

void Warp::wmma_m8n32k16(const half_t (&a)[8][16],
                         const half_t (&b)[16][32], float (&c)[8][32]) {
  float* rows[8];
  for (int i = 0; i < 8; ++i) rows[i] = c[i];
  wmma_m8n32k16(a, b, rows, 8);
}

void Warp::wmma_m8n32k16(const half_t (&a)[8][16],
                         const half_t (&b)[16][32],
                         float* const (&c_rows)[8], int rows) {
  // (8*32*16) MACs / (8*4*4 per HMMA.884 step * 4 octets / 4 steps):
  // the hardware instruction decomposes into 16 HMMA steps.
  count(Op::kHmma, 16);
  const half_t(*ea)[16] = a;
  const half_t(*eb)[32] = b;
  half_t fa[8][16], fb[16][32];
  if (FaultState* faults = sm().faults(); faults != nullptr)
      [[unlikely]] {
    // Register-fragment upset on local operand copies (see mma_m8n8k4).
    std::memcpy(fa, a, sizeof(fa));
    std::memcpy(fb, b, sizeof(fb));
    faults->on_mma_frags(fa, sizeof(fa), fb, sizeof(fb), stats());
    ea = fa;
    eb = fb;
  }
  // Widen both tiles once (exact, see mma_m8n8k4), then accumulate with
  // the i/k/j loop order so the j loop vectorizes.  Each c[i][j] still
  // receives sum_{k} a[i][k]*b[k][j] folded over ascending k into a
  // zero-initialized partial that is added to c once at the end —
  // exactly the naive j-inner loop's operation sequence per output, so
  // results are bit-identical.
  float wa[8 * 16], wb[16 * 32];  // row-major flats (2-D indexing into a
                                  // [8][16] local would be UB past the
                                  // inner bound for the batch converter)
  for (int i = 0; i < rows; ++i) half_to_float_n(ea[i], wa + 16 * i, 16);
  for (int k = 0; k < 16; ++k) half_to_float_n(eb[k], wb + 32 * k, 32);
  for (int i = 0; i < rows; ++i) {
    float sum[32] = {};
    for (int k = 0; k < 16; ++k) {
      const float aik = wa[16 * i + k];
      const float* brow = wb + 32 * k;
      for (int j = 0; j < 32; ++j) {
        sum[j] += aik * brow[j];
      }
    }
    float* crow = c_rows[i];
    for (int j = 0; j < 32; ++j) {
      crow[j] += sum[j];
    }
  }
}

}  // namespace vsparse::gpusim

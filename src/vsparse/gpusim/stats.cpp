#include "vsparse/gpusim/stats.hpp"

#include <numeric>
#include <ostream>
#include <sstream>

#include "vsparse/gpusim/trace/counters.hpp"

namespace vsparse::gpusim {

const char* op_name(Op op) {
  switch (op) {
    case Op::kHmma:
      return "HMMA";
    case Op::kHfma:
      return "HFMA";
    case Op::kFfma:
      return "FFMA";
    case Op::kImad:
      return "IMAD";
    case Op::kIadd3:
      return "IADD3";
    case Op::kLdg:
      return "LDG";
    case Op::kStg:
      return "STG";
    case Op::kLds:
      return "LDS";
    case Op::kSts:
      return "STS";
    case Op::kShfl:
      return "SHFL";
    case Op::kBar:
      return "BAR";
    case Op::kCvt:
      return "CVT";
    case Op::kMisc:
      return "MISC";
    case Op::kNumOps:
      break;
  }
  return "?";
}

std::uint64_t KernelStats::total_instructions() const {
  return std::accumulate(ops, ops + kNumOps, std::uint64_t{0});
}

std::uint64_t KernelStats::math_instructions() const {
  return op(Op::kHmma) + op(Op::kHfma) + op(Op::kFfma);
}

double KernelStats::sectors_per_request() const {
  if (global_load_requests == 0) return 0.0;
  return static_cast<double>(global_load_sectors) /
         static_cast<double>(global_load_requests);
}

double KernelStats::smem_to_global_load_ratio() const {
  if (global_load_requests == 0) return 0.0;
  return static_cast<double>(smem_load_requests) /
         static_cast<double>(global_load_requests);
}

// Merge, equality, and formatting all derive from the counter registry
// (trace/counters.cpp) — the single definition site for the counter
// set.  Adding a field to KernelStats without a registry row fails the
// static_assert in trace/counters.hpp.

KernelStats& KernelStats::operator+=(const KernelStats& o) {
  counters_accumulate(*this, o);
  return *this;
}

bool KernelStats::sm_local_equal(const KernelStats& o) const {
  return counters_sm_local_equal(*this, o);
}

std::string KernelStats::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const KernelStats& s) {
  counters_print(os, s);
  return os;
}

}  // namespace vsparse::gpusim

#include "vsparse/gpusim/stats.hpp"

#include <numeric>
#include <ostream>
#include <sstream>

namespace vsparse::gpusim {

const char* op_name(Op op) {
  switch (op) {
    case Op::kHmma:
      return "HMMA";
    case Op::kHfma:
      return "HFMA";
    case Op::kFfma:
      return "FFMA";
    case Op::kImad:
      return "IMAD";
    case Op::kIadd3:
      return "IADD3";
    case Op::kLdg:
      return "LDG";
    case Op::kStg:
      return "STG";
    case Op::kLds:
      return "LDS";
    case Op::kSts:
      return "STS";
    case Op::kShfl:
      return "SHFL";
    case Op::kBar:
      return "BAR";
    case Op::kCvt:
      return "CVT";
    case Op::kMisc:
      return "MISC";
    case Op::kNumOps:
      break;
  }
  return "?";
}

std::uint64_t KernelStats::total_instructions() const {
  return std::accumulate(ops, ops + kNumOps, std::uint64_t{0});
}

std::uint64_t KernelStats::math_instructions() const {
  return op(Op::kHmma) + op(Op::kHfma) + op(Op::kFfma);
}

double KernelStats::sectors_per_request() const {
  if (global_load_requests == 0) return 0.0;
  return static_cast<double>(global_load_sectors) /
         static_cast<double>(global_load_requests);
}

double KernelStats::smem_to_global_load_ratio() const {
  if (global_load_requests == 0) return 0.0;
  return static_cast<double>(smem_load_requests) /
         static_cast<double>(global_load_requests);
}

KernelStats& KernelStats::operator+=(const KernelStats& o) {
  for (int i = 0; i < kNumOps; ++i) ops[i] += o.ops[i];
  ldg16 += o.ldg16;
  ldg32 += o.ldg32;
  ldg64 += o.ldg64;
  ldg128 += o.ldg128;
  global_load_requests += o.global_load_requests;
  global_load_sectors += o.global_load_sectors;
  global_store_requests += o.global_store_requests;
  global_store_sectors += o.global_store_sectors;
  l1_sector_hits += o.l1_sector_hits;
  l1_sector_misses += o.l1_sector_misses;
  l2_sector_hits += o.l2_sector_hits;
  l2_sector_misses += o.l2_sector_misses;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  smem_load_requests += o.smem_load_requests;
  smem_store_requests += o.smem_store_requests;
  smem_load_bytes += o.smem_load_bytes;
  smem_store_bytes += o.smem_store_bytes;
  smem_wavefronts += o.smem_wavefronts;
  ctas_launched += o.ctas_launched;
  warps_launched += o.warps_launched;
  faults_injected += o.faults_injected;
  faults_masked += o.faults_masked;
  faults_detected += o.faults_detected;
  return *this;
}

bool KernelStats::sm_local_equal(const KernelStats& o) const {
  for (int i = 0; i < kNumOps; ++i) {
    if (ops[i] != o.ops[i]) return false;
  }
  return ldg16 == o.ldg16 && ldg32 == o.ldg32 && ldg64 == o.ldg64 &&
         ldg128 == o.ldg128 &&
         global_load_requests == o.global_load_requests &&
         global_load_sectors == o.global_load_sectors &&
         global_store_requests == o.global_store_requests &&
         global_store_sectors == o.global_store_sectors &&
         l1_sector_hits == o.l1_sector_hits &&
         l1_sector_misses == o.l1_sector_misses &&
         smem_load_requests == o.smem_load_requests &&
         smem_store_requests == o.smem_store_requests &&
         smem_load_bytes == o.smem_load_bytes &&
         smem_store_bytes == o.smem_store_bytes &&
         smem_wavefronts == o.smem_wavefronts &&
         ctas_launched == o.ctas_launched &&
         warps_launched == o.warps_launched &&
         faults_injected == o.faults_injected &&
         faults_masked == o.faults_masked &&
         faults_detected == o.faults_detected;
}

std::string KernelStats::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const KernelStats& s) {
  os << "instructions:";
  for (int i = 0; i < kNumOps; ++i) {
    if (s.ops[i] != 0) {
      os << ' ' << op_name(static_cast<Op>(i)) << '=' << s.ops[i];
    }
  }
  os << "\nldg widths: 16b=" << s.ldg16 << " 32b=" << s.ldg32
     << " 64b=" << s.ldg64 << " 128b=" << s.ldg128;
  os << "\nglobal: load_req=" << s.global_load_requests
     << " load_sectors=" << s.global_load_sectors
     << " store_req=" << s.global_store_requests
     << " store_sectors=" << s.global_store_sectors
     << " sectors/req=" << s.sectors_per_request();
  os << "\nL1: hits=" << s.l1_sector_hits << " misses=" << s.l1_sector_misses
     << "  L2: hits=" << s.l2_sector_hits << " misses=" << s.l2_sector_misses
     << "  DRAM rd=" << s.dram_read_bytes << "B wr=" << s.dram_write_bytes
     << 'B';
  os << "\nsmem: ld_req=" << s.smem_load_requests
     << " st_req=" << s.smem_store_requests
     << " wavefronts=" << s.smem_wavefronts;
  os << "\nlaunch: ctas=" << s.ctas_launched << " warps=" << s.warps_launched;
  // Only printed when a FaultPlan actually fired, so fault-free dumps
  // stay byte-identical to the pre-fault-subsystem output.
  if (s.faults_injected != 0 || s.faults_masked != 0 || s.faults_detected != 0) {
    os << "\nfaults: injected=" << s.faults_injected
       << " masked=" << s.faults_masked << " detected=" << s.faults_detected;
  }
  return os;
}

}  // namespace vsparse::gpusim

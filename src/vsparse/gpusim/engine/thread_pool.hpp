// Lazily-grown persistent worker pool for the execution engine.
//
// A launch hands the pool one job closure and a worker count; the pool
// runs the closure on that many threads (the caller participates as
// one of them) and blocks until all return.  Workers persist across
// launches so the per-launch cost is a wakeup, not thread creation —
// benches issue thousands of launches.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vsparse::gpusim {

class ThreadPool {
 public:
  /// The process-wide pool used by `launch()`.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Run `job` on `workers` threads concurrently (the calling thread
  /// counts as one) and wait for all of them to finish.  The job must
  /// partition its own work (e.g. via Scheduler::next_sm) — every
  /// worker executes the same closure.  Serialized: one run at a time.
  ///
  /// Exception safety: a throw from any copy of the job (worker or
  /// caller thread) is captured, the barrier still completes, and the
  /// first exception is rethrown here — the pool's counters stay
  /// consistent and the pool is immediately reusable.  The caller
  /// thread's exception wins ties (it is observed first).
  void run(int workers, const std::function<void()>& job);

 private:
  ThreadPool() = default;
  void worker_loop();
  void ensure_workers(int n);  // callers hold no locks

  std::mutex run_mu_;  ///< serializes run() callers

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::function<void()> job_;
  std::exception_ptr error_;      ///< first exception thrown by this run's jobs
  std::uint64_t generation_ = 0;  ///< bumped per run()
  int claims_left_ = 0;           ///< workers still allowed to join this run
  int running_ = 0;               ///< pool workers still executing this run
  bool stop_ = false;
};

}  // namespace vsparse::gpusim

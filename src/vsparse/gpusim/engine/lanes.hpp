// Per-lane register-file slices: the value type kernels compute on.
#pragma once

#include <array>
#include <cstdint>

namespace vsparse::gpusim {

/// Per-lane register file slice: one value per lane of a 32-lane warp.
template <class T>
using Lanes = std::array<T, 32>;

using AddrLanes = Lanes<std::uint64_t>;

inline constexpr std::uint32_t kFullMask = 0xffffffffu;

}  // namespace vsparse::gpusim

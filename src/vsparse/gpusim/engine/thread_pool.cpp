#include "vsparse/gpusim/engine/thread_pool.hpp"

namespace vsparse::gpusim {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ensure_workers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < n) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::run(int workers, const std::function<void()>& job) {
  if (workers <= 1) {
    job();
    return;
  }
  std::lock_guard<std::mutex> serial(run_mu_);
  const int helpers = workers - 1;  // the caller is worker #0
  ensure_workers(helpers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    error_ = nullptr;
    claims_left_ = helpers;
    running_ = helpers;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller's copy of the job must not skip the barrier below on a
  // throw — workers may still be running and `running_` must drain
  // before the next run() — so capture and rethrow after the wait.
  std::exception_ptr caller_error;
  try {
    job();
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
    error = caller_error ? caller_error : error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen && claims_left_ > 0);
      });
      if (stop_) return;
      seen = generation_;
      --claims_left_;
      job = job_;
    }
    // A throw on a pool worker would otherwise reach the thread root
    // and std::terminate the process; stash the first one for run()
    // to rethrow on the caller thread.
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !error_) error_ = err;
      --running_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace vsparse::gpusim

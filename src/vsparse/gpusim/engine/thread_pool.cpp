#include "vsparse/gpusim/engine/thread_pool.hpp"

namespace vsparse::gpusim {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ensure_workers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < n) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::run(int workers, const std::function<void()>& job) {
  if (workers <= 1) {
    job();
    return;
  }
  std::lock_guard<std::mutex> serial(run_mu_);
  const int helpers = workers - 1;  // the caller is worker #0
  ensure_workers(helpers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    claims_left_ = helpers;
    running_ = helpers;
    ++generation_;
  }
  work_cv_.notify_all();
  job();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen && claims_left_ > 0);
      });
      if (stop_) return;
      seen = generation_;
      --claims_left_;
      job = job_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace vsparse::gpusim

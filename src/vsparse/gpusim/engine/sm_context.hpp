// Per-SM execution state: everything one model SM mutates while its
// CTAs run.  A fresh SmContext is created for each SM at every launch
// — which is exactly the kernel-boundary L1 invalidation real GPUs
// perform — and is only ever touched by the single host thread that
// executes that SM's CTA list, so nothing here needs synchronization.
// The only cross-SM shared state is the Device's DRAM arena (disjoint
// addresses per CTA, like real hardware) and its L2 (internally
// slice-locked).
#pragma once

#include <cstddef>
#include <vector>

#include "vsparse/gpusim/cache.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/stats.hpp"

namespace vsparse::gpusim {

class SmSanitizer;
class SmTrace;

class SmContext {
 public:
  SmContext(Device* dev, int sm_id);

  int sm_id() const { return sm_id_; }
  Device& device() { return *dev_; }

  /// This SM's private L1 (born cold at launch start).
  SectorCache& l1() { return l1_; }

  /// This SM's private counter block; merged across SMs after the
  /// launch joins (uint64 sums are commutative, so the merge is
  /// order-independent and bit-exact for any thread count).
  KernelStats& stats() { return stats_; }
  const KernelStats& stats() const { return stats_; }

  /// Shared-memory arena for the currently-running CTA, zeroed and
  /// sized to `bytes` (the CTA's static smem) before each CTA starts.
  std::byte* prepare_smem(std::size_t bytes);
  std::byte* smem() { return smem_.data(); }

  /// Fault-injection state for this SM, or nullptr when the device has
  /// no FaultPlan attached — the single-branch fast path the warp ops
  /// test before doing any fault work.
  FaultState* faults() { return faults_.plan != nullptr ? &faults_ : nullptr; }

  /// This SM's trace buffer for the current launch, or nullptr when
  /// tracing is disabled — the same null-pointer fast path as faults().
  SmTrace* trace() { return trace_; }

  /// Attach the per-launch trace buffer (engine only).  Also threads it
  /// into the fault state so ECC events are trace-attributed.
  void set_trace(SmTrace* trace) {
    trace_ = trace;
    faults_.trace = trace;
  }

  /// This SM's sanitizer collector for the current launch, or nullptr
  /// when sanitizing is disabled — the same null-pointer fast path as
  /// faults() and trace().
  SmSanitizer* sanitizer() { return sanitizer_; }
  void set_sanitizer(SmSanitizer* sanitizer) { sanitizer_ = sanitizer; }

  // -- watchdog ---------------------------------------------------------
  /// Arm the per-CTA op budget for this launch (0 = disabled) and reset
  /// the running count at each CTA start.
  void set_watchdog_limit(std::uint64_t ops) { watchdog_limit_ = ops; }
  void watchdog_reset() { watchdog_ops_ = 0; }
  std::uint64_t watchdog_ops() const { return watchdog_ops_; }

  /// Charge `n` warp ops against the current CTA's budget.  Inline and
  /// branch-free in the common (disabled / under-budget) case.
  VSPARSE_ALWAYS_INLINE void watchdog_tick(std::uint64_t n) {
    watchdog_ops_ += n;
    if (watchdog_limit_ != 0 && watchdog_ops_ > watchdog_limit_) [[unlikely]]
      throw_watchdog();
  }

 private:
  [[noreturn]] void throw_watchdog() const;

  Device* dev_;
  int sm_id_;
  SectorCache l1_;
  KernelStats stats_;
  std::vector<std::byte> smem_;
  FaultState faults_;
  SmTrace* trace_ = nullptr;
  SmSanitizer* sanitizer_ = nullptr;
  std::uint64_t watchdog_limit_ = 0;
  std::uint64_t watchdog_ops_ = 0;
};

}  // namespace vsparse::gpusim

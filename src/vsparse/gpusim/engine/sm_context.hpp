// Per-SM execution state: everything one model SM mutates while its
// CTAs run.  A fresh SmContext is created for each SM at every launch
// — which is exactly the kernel-boundary L1 invalidation real GPUs
// perform — and is only ever touched by the single host thread that
// executes that SM's CTA list, so nothing here needs synchronization.
// The only cross-SM shared state is the Device's DRAM arena (disjoint
// addresses per CTA, like real hardware) and its L2 (internally
// slice-locked).
#pragma once

#include <cstddef>
#include <vector>

#include "vsparse/gpusim/cache.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/stats.hpp"

namespace vsparse::gpusim {

class SmContext {
 public:
  SmContext(Device* dev, int sm_id);

  int sm_id() const { return sm_id_; }
  Device& device() { return *dev_; }

  /// This SM's private L1 (born cold at launch start).
  SectorCache& l1() { return l1_; }

  /// This SM's private counter block; merged across SMs after the
  /// launch joins (uint64 sums are commutative, so the merge is
  /// order-independent and bit-exact for any thread count).
  KernelStats& stats() { return stats_; }
  const KernelStats& stats() const { return stats_; }

  /// Shared-memory arena for the currently-running CTA, zeroed and
  /// sized to `bytes` (the CTA's static smem) before each CTA starts.
  std::byte* prepare_smem(std::size_t bytes);
  std::byte* smem() { return smem_.data(); }

 private:
  Device* dev_;
  int sm_id_;
  SectorCache l1_;
  KernelStats stats_;
  std::vector<std::byte> smem_;
};

}  // namespace vsparse::gpusim

// The type-erased launch core: validates a launch, shards the SM array
// across the thread pool, and merges per-SM counters.  The templated
// `launch()` adapter in launch.hpp is the public entry point; keeping
// the engine body out-of-line means the scheduling/threading logic is
// compiled once instead of into every kernel translation unit.
#pragma once

#include <cstdint>
#include <functional>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/cta.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/stats.hpp"

namespace vsparse::gpusim {

/// Execute `body` once per CTA of the launch, distributing SMs across
/// host threads per `opts` (threads == 0 inherits the Device default),
/// and return the merged hardware counters.  The first exception thrown
/// by any CTA body is rethrown on the calling thread after the join.
KernelStats run_launch(Device& dev, const LaunchConfig& cfg,
                       const std::function<void(Cta&)>& body,
                       const SimOptions& opts);

/// Process-wide count of CTAs simulated since program start, across
/// all devices and launches.  Benches snapshot it to report simulator
/// throughput (simulated CTAs per wall-clock second).
std::uint64_t total_simulated_ctas();

}  // namespace vsparse::gpusim

// Launch-boundary engine pieces: the type-erased run_launch
// compatibility entry, the process-wide CTA counter, and the
// engine_detail helpers (trace/sanitizer merge, error augmentation)
// that the devirtualized `run_launch_direct<Body>` template in
// launch.hpp calls.  The hot per-CTA loop lives in that template so
// each kernel body is a direct, inlinable call; only the cold
// launch-boundary work is compiled once here.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/cta.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sim_options.hpp"
#include "vsparse/gpusim/stats.hpp"

namespace vsparse::gpusim {

class SmContext;
class SmTrace;
class SmSanitizer;
struct SanitizerOptions;
class Trace;
class Sanitizer;

/// Execute `body` once per CTA of the launch, distributing SMs across
/// host threads per `opts` (threads == 0 inherits the Device default),
/// and return the merged hardware counters.  The first exception thrown
/// by any CTA body is rethrown on the calling thread after the join.
///
/// This is the type-erased compatibility form.  The hot path is the
/// devirtualized `run_launch_direct<Body>` template (engine/launch.hpp)
/// that `launch()` — and through it every registry launch thunk
/// (kernels/registry.hpp) — instantiates per kernel, so each kernel's
/// CTA loop is a direct, inlinable call instead of a std::function
/// dispatch.
KernelStats run_launch(Device& dev, const LaunchConfig& cfg,
                       const std::function<void(Cta&)>& body,
                       const SimOptions& opts);

/// Process-wide count of CTAs simulated since program start, across
/// all devices and launches.  Benches snapshot it to report simulator
/// throughput (simulated CTAs per wall-clock second).
std::uint64_t total_simulated_ctas();

namespace engine_detail {

// Out-of-line helpers shared by every run_launch_direct instantiation —
// the cold launch-boundary work (merging trace/sanitizer collectors,
// error augmentation, the global CTA counter) compiles once here while
// the per-CTA loop specializes per kernel body.

/// Merge the per-SM trace buffers into one LaunchTrace and hand it to
/// the sink (bit-identical for any host thread count).
void finish_trace(Trace& sink, const LaunchConfig& cfg, int num_sms,
                  std::vector<SmTrace>& traces,
                  const std::vector<SmContext>& sms, bool aborted);

/// Merge the per-SM sanitizer collectors into one record and hand it to
/// the sink (SM-id merge order + cross-SM dedup, thread-count exact).
void finish_sanitizer(Sanitizer& sink, const LaunchConfig& cfg,
                      const SanitizerOptions& opts,
                      const std::vector<SmSanitizer>& sans, bool aborted);

/// Rethrow a launch error; LaunchTimeoutError gains a per-SM progress
/// dump.
[[noreturn]] void rethrow_launch_error(std::exception_ptr err,
                                       const std::vector<SmContext>& sms);

/// Add to the process-wide simulated-CTA counter.
void note_simulated_ctas(std::uint64_t ctas);

/// Throw the device's armed fault-domain error (wedge/death), if any.
/// Called at launch entry before any CTA is scheduled; a kNone device
/// returns immediately, keeping the fault-free path bit-identical.
void check_device_serviceable(const Device& dev);

}  // namespace engine_detail

}  // namespace vsparse::gpusim

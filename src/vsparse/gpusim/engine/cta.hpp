// CTA/warp execution contexts — the handles kernel bodies are written
// against.  The warp-op template bodies (ldg/stg/lds/sts/shfl) live in
// warp_ops.hpp so they stay header-only for inlining into kernels.
#pragma once

#include <array>
#include <cstdint>

#include "vsparse/common/macros.hpp"
#include "vsparse/fp16/vec.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sm_context.hpp"
#include "vsparse/gpusim/sanitizer/shadow.hpp"
#include "vsparse/gpusim/stats.hpp"
#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

class Cta;

/// Per-lane A/B fragments for mma.m8n8k4: 4 halves each.
using MmaFragAB = Lanes<half4>;
/// Per-lane accumulator fragment: one 8-float output row.
using MmaFragC = Lanes<std::array<float, 8>>;

struct MmaFlags {
  bool switch_groups = false;  ///< the Fig. 15 architecture extension
  unsigned step_mask = 0xF;    ///< which of STEP0..3 to execute
};

/// Handle through which kernel code issues warp-level operations.
///
/// ## Address-pattern contract (uniform / affine / divergent)
///
/// Every memory op exists in two forms with identical observable
/// behavior (data movement, counters, trace events, sanitizer reports,
/// fault injection):
///
///  * **per-lane** (`ldg`/`stg`/`lds`/`sts`): the kernel materializes a
///    32-entry address array.  This is the fully general *divergent*
///    form — any lane may point anywhere — and the engine pays one
///    address translation, one bounds check, and one sector/bank
///    dedup step per active lane.
///  * **span** (`ldg_span`/`stg_span`/`lds_span`/`sts_span`): the
///    kernel *states* the pattern as segments of an affine sequence:
///    lanes split into `segs` consecutive segments of `width` lanes
///    each (`segs * width <= 32`), and lane `l = seg*width + t`
///    addresses `seg_base[seg] + t*stride`.  *Uniform* is `stride == 0`;
///    pure *affine* is one segment.  The engine services each segment
///    with one hull translation / bounds check and closed-form (or
///    compare-with-previous) sector and bank-conflict accounting —
///    O(segs) consultations instead of O(32).
///
/// Span ops are counter- and bit-exact with their per-lane forms by
/// construction (DESIGN.md §2h gives the equivalence argument), and
/// they *self-divert*: when a sanitizer or fault plan is attached — or
/// a shared-memory hull check fails and per-lane reporting is owed —
/// the span op expands its descriptor into lane arrays and runs the
/// per-lane path, so the slow diagnostic surfaces see exactly the
/// per-lane access sequence.  Kernels should state patterns with span
/// ops and reserve hand-built lane arrays for genuinely divergent
/// accesses.
class Warp {
 public:
  Warp(Cta* cta, int warp_id) : cta_(cta), warp_id_(warp_id) {}

  int warp_id() const { return warp_id_; }

  /// Manual instruction accounting for work the C++ body does implicitly
  /// (address arithmetic -> IMAD/IADD3, predicate logic -> MISC...).
  /// Placed where the corresponding CUDA kernel would execute them.
  void count(Op op, std::uint64_t n = 1);

  /// Global load: each active lane reads a naturally-aligned value of
  /// type V from its device address.  sizeof(V) in {2,4,8,16} selects
  /// LDG.{16,32,64,128}.  Coalescing (unique 32 B sectors across the
  /// warp) is measured, then the L1 (this SM) and L2 models are walked.
  template <class V>
  void ldg(const AddrLanes& addr, Lanes<V>& dst,
           std::uint32_t mask = kFullMask);

  /// Global store: write-through to DRAM via L2; L1 bypassed (Volta
  /// global stores do not allocate in L1).
  template <class V>
  void stg(const AddrLanes& addr, const Lanes<V>& src,
           std::uint32_t mask = kFullMask);

  /// Shared-memory load/store; `off` are byte offsets into CTA smem.
  /// Bank conflicts (32 banks x 4 B) expand into extra wavefronts.
  template <class V>
  void lds(const Lanes<std::uint32_t>& off, Lanes<V>& dst,
           std::uint32_t mask = kFullMask);
  template <class V>
  void sts(const Lanes<std::uint32_t>& off, const Lanes<V>& src,
           std::uint32_t mask = kFullMask);

  /// Span global load: lane `l = seg*width + t` (t < width, seg < segs)
  /// reads sizeof(V) bytes from `seg_base[seg] + t*stride`.  One hull
  /// translation and one monotone sector walk per segment replace the 32
  /// per-lane ones; counters match `ldg` on the expanded addresses
  /// bit-for-bit (see the class comment for the full contract).
  template <class V>
  void ldg_span(const std::uint64_t* seg_base, int segs, int width,
                std::uint32_t stride, Lanes<V>& dst,
                std::uint32_t mask = kFullMask);

  /// Affine global load: lane l reads from `base + l*stride`
  /// (stride == 0 is the uniform broadcast pattern).
  template <class V>
  void ldg_span(std::uint64_t base, std::uint32_t stride, Lanes<V>& dst,
                std::uint32_t mask = kFullMask);

  /// Span global store (write-through, same pattern grammar as
  /// ldg_span).
  template <class V>
  void stg_span(const std::uint64_t* seg_base, int segs, int width,
                std::uint32_t stride, const Lanes<V>& src,
                std::uint32_t mask = kFullMask);

  /// Affine global store.
  template <class V>
  void stg_span(std::uint64_t base, std::uint32_t stride, const Lanes<V>& src,
                std::uint32_t mask = kFullMask);

  /// Span shared-memory load: lane `l = seg*width + t` reads from byte
  /// offset `seg_off[seg] + t*stride`.  One hull bounds check per
  /// segment; the bank-conflict degree is computed in closed form for
  /// full-mask affine/repeated patterns and by the per-lane scan
  /// otherwise — identical to `lds` either way.
  template <class V>
  void lds_span(const std::uint32_t* seg_off, int segs, int width,
                std::uint32_t stride, Lanes<V>& dst,
                std::uint32_t mask = kFullMask);

  /// Affine shared-memory load.
  template <class V>
  void lds_span(std::uint32_t off, std::uint32_t stride, Lanes<V>& dst,
                std::uint32_t mask = kFullMask);

  /// Span shared-memory store.
  template <class V>
  void sts_span(const std::uint32_t* seg_off, int segs, int width,
                std::uint32_t stride, const Lanes<V>& src,
                std::uint32_t mask = kFullMask);

  /// Affine shared-memory store.
  template <class V>
  void sts_span(std::uint32_t off, std::uint32_t stride, const Lanes<V>& src,
                std::uint32_t mask = kFullMask);

  /// Warp-wide mma.m8n8k4: four octets each compute an (8x4)·(4x8)
  /// product accumulated in fp32.  Charges one HMMA issue slot per
  /// executed step.  Fragment layout and the SWITCH extension are
  /// documented in gpusim/tensorcore.hpp.
  void mma_m8n8k4(const MmaFragAB& a, const MmaFragAB& b, MmaFragC& c,
                  MmaFlags flags = {});

  /// Warp-level WMMA (8x16)·(16x32) with fp32 accumulation, used by the
  /// classic-mapping baseline kernels (§5.2, §6.2).  Consumes assembled
  /// logical tiles and charges the 16 HMMA.884 steps the hardware
  /// instruction decomposes into.
  void wmma_m8n32k16(const half_t (&a)[8][16], const half_t (&b)[16][32],
                     float (&c)[8][32]);

  /// Strided in-place WMMA form: accumulates row i of the product into
  /// c_rows[i][0..32) for i < rows, where each row pointer may alias a
  /// larger accumulator tile.  Rows past `rows` are skipped entirely —
  /// bit-identical to running the [8][32] form on zero-padded A rows
  /// and discarding the padded output rows, without the staging copies.
  void wmma_m8n32k16(const half_t (&a)[8][16], const half_t (&b)[16][32],
                     float* const (&c_rows)[8], int rows);

  /// Warp shuffle: dst[lane] = src[srclane[lane]] for active lanes.
  template <class T>
  void shfl(Lanes<T>& dst, const Lanes<T>& src, const Lanes<int>& srclane,
            std::uint32_t mask = kFullMask);

  /// dst[lane] = src[lane ^ xor_mask] (butterfly reduction step).
  template <class T>
  void shfl_xor(Lanes<T>& dst, const Lanes<T>& src, int xor_mask,
                std::uint32_t mask = kFullMask);

  /// __threadfence_block(): the §5.4 ILP trick uses this to separate the
  /// load batch from the MMA batch.  Counted as a MEMBAR issue slot.
  void fence();

  /// Per-warp barrier arrival (bar.sync as one warp executes it) —
  /// advances this warp's barrier epoch for the sanitizer's racecheck.
  /// Warps run phase-by-phase, so a CTA-wide barrier is each warp
  /// executing bar_sync once per phase; `Cta::sync()` is the uniform
  /// shorthand that arrives every warp.  A partial `mask` models a
  /// barrier executed under divergence — always a bug, and what
  /// synccheck exists to report.  Costs one kBar issue slot, exactly
  /// like one warp's share of Cta::sync().
  void bar_sync(std::uint32_t mask = kFullMask);

  Cta& cta() { return *cta_; }

 private:
  KernelStats& stats();
  Device& device();
  SmContext& sm();
  int sm_id() const;

  Cta* cta_;
  int warp_id_;
};

/// Per-CTA execution context: identity, shared memory, warp handles.
/// Backed by the SmContext of the SM this CTA was scheduled on.
class Cta {
 public:
  Cta(SmContext* sm, const LaunchConfig* cfg, int cta_id)
      : sm_(sm), cfg_(cfg), cta_id_(cta_id) {}

  int cta_id() const { return cta_id_; }
  int num_ctas() const { return cfg_->grid; }
  int sm_id() const { return sm_->sm_id(); }
  int num_warps() const { return cfg_->cta_threads / 32; }

  Warp warp(int w) {
    VSPARSE_DCHECK(w >= 0 && w < num_warps());
    return Warp(this, w);
  }

  /// Run `fn(Warp&)` for every warp of the CTA (one execution phase).
  template <class F>
  void for_each_warp(F&& fn) {
    for (int w = 0; w < num_warps(); ++w) {
      Warp wp(this, w);
      fn(wp);
    }
  }

  /// __syncthreads(): counted once per warp.
  void sync() {
    sm_->stats().op(Op::kBar) += static_cast<std::uint64_t>(num_warps());
    sm_->watchdog_tick(static_cast<std::uint64_t>(num_warps()));
    if (SmTrace* t = sm_->trace()) [[unlikely]] {
      t->on_sync(cta_id_, num_warps());
    }
    if (SmSanitizer* san = sm_->sanitizer()) [[unlikely]] {
      san->on_cta_sync();
    }
  }

  /// Raw shared-memory storage (kernels address it via lds/sts offsets;
  /// this pointer backs those accesses).
  std::byte* smem() { return sm_->smem(); }
  std::size_t smem_bytes() const { return cfg_->smem_bytes; }

  Device& device() { return sm_->device(); }
  KernelStats& stats() { return sm_->stats(); }
  SmContext& sm() { return *sm_; }

 private:
  SmContext* sm_;
  const LaunchConfig* cfg_;
  int cta_id_;
};

inline KernelStats& Warp::stats() { return cta_->stats(); }
inline Device& Warp::device() { return cta_->device(); }
inline SmContext& Warp::sm() { return cta_->sm(); }
inline int Warp::sm_id() const { return cta_->sm_id(); }

inline void Warp::count(Op op, std::uint64_t n) {
  stats().op(op) += n;
  sm().watchdog_tick(n);
  if (SmTrace* t = sm().trace()) [[unlikely]] {
    t->on_ops(op, n, cta_->cta_id(), warp_id_);
  }
}

inline void Warp::fence() { count(Op::kBar); }

inline void Warp::bar_sync(std::uint32_t mask) {
  count(Op::kBar);
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_bar_arrive(warp_id_, mask);
  }
}

}  // namespace vsparse::gpusim

// CTA/warp execution contexts — the handles kernel bodies are written
// against.  The warp-op template bodies (ldg/stg/lds/sts/shfl) live in
// warp_ops.hpp so they stay header-only for inlining into kernels.
#pragma once

#include <cstdint>

#include "vsparse/common/macros.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/engine/sm_context.hpp"
#include "vsparse/gpusim/sanitizer/shadow.hpp"
#include "vsparse/gpusim/stats.hpp"
#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

class Cta;

/// Handle through which kernel code issues warp-level operations.
class Warp {
 public:
  Warp(Cta* cta, int warp_id) : cta_(cta), warp_id_(warp_id) {}

  int warp_id() const { return warp_id_; }

  /// Manual instruction accounting for work the C++ body does implicitly
  /// (address arithmetic -> IMAD/IADD3, predicate logic -> MISC...).
  /// Placed where the corresponding CUDA kernel would execute them.
  void count(Op op, std::uint64_t n = 1);

  /// Global load: each active lane reads a naturally-aligned value of
  /// type V from its device address.  sizeof(V) in {2,4,8,16} selects
  /// LDG.{16,32,64,128}.  Coalescing (unique 32 B sectors across the
  /// warp) is measured, then the L1 (this SM) and L2 models are walked.
  template <class V>
  void ldg(const AddrLanes& addr, Lanes<V>& dst,
           std::uint32_t mask = kFullMask);

  /// Global store: write-through to DRAM via L2; L1 bypassed (Volta
  /// global stores do not allocate in L1).
  template <class V>
  void stg(const AddrLanes& addr, const Lanes<V>& src,
           std::uint32_t mask = kFullMask);

  /// Shared-memory load/store; `off` are byte offsets into CTA smem.
  /// Bank conflicts (32 banks x 4 B) expand into extra wavefronts.
  template <class V>
  void lds(const Lanes<std::uint32_t>& off, Lanes<V>& dst,
           std::uint32_t mask = kFullMask);
  template <class V>
  void sts(const Lanes<std::uint32_t>& off, const Lanes<V>& src,
           std::uint32_t mask = kFullMask);

  /// Warp shuffle: dst[lane] = src[srclane[lane]] for active lanes.
  template <class T>
  void shfl(Lanes<T>& dst, const Lanes<T>& src, const Lanes<int>& srclane,
            std::uint32_t mask = kFullMask);

  /// dst[lane] = src[lane ^ xor_mask] (butterfly reduction step).
  template <class T>
  void shfl_xor(Lanes<T>& dst, const Lanes<T>& src, int xor_mask,
                std::uint32_t mask = kFullMask);

  /// __threadfence_block(): the §5.4 ILP trick uses this to separate the
  /// load batch from the MMA batch.  Counted as a MEMBAR issue slot.
  void fence();

  /// Per-warp barrier arrival (bar.sync as one warp executes it) —
  /// advances this warp's barrier epoch for the sanitizer's racecheck.
  /// Warps run phase-by-phase, so a CTA-wide barrier is each warp
  /// executing bar_sync once per phase; `Cta::sync()` is the uniform
  /// shorthand that arrives every warp.  A partial `mask` models a
  /// barrier executed under divergence — always a bug, and what
  /// synccheck exists to report.  Costs one kBar issue slot, exactly
  /// like one warp's share of Cta::sync().
  void bar_sync(std::uint32_t mask = kFullMask);

  Cta& cta() { return *cta_; }

 private:
  KernelStats& stats();
  Device& device();
  SmContext& sm();
  int sm_id() const;

  Cta* cta_;
  int warp_id_;
};

/// Per-CTA execution context: identity, shared memory, warp handles.
/// Backed by the SmContext of the SM this CTA was scheduled on.
class Cta {
 public:
  Cta(SmContext* sm, const LaunchConfig* cfg, int cta_id)
      : sm_(sm), cfg_(cfg), cta_id_(cta_id) {}

  int cta_id() const { return cta_id_; }
  int num_ctas() const { return cfg_->grid; }
  int sm_id() const { return sm_->sm_id(); }
  int num_warps() const { return cfg_->cta_threads / 32; }

  Warp warp(int w) {
    VSPARSE_DCHECK(w >= 0 && w < num_warps());
    return Warp(this, w);
  }

  /// Run `fn(Warp&)` for every warp of the CTA (one execution phase).
  template <class F>
  void for_each_warp(F&& fn) {
    for (int w = 0; w < num_warps(); ++w) {
      Warp wp(this, w);
      fn(wp);
    }
  }

  /// __syncthreads(): counted once per warp.
  void sync() {
    sm_->stats().op(Op::kBar) += static_cast<std::uint64_t>(num_warps());
    sm_->watchdog_tick(static_cast<std::uint64_t>(num_warps()));
    if (SmTrace* t = sm_->trace()) [[unlikely]] {
      t->on_sync(cta_id_, num_warps());
    }
    if (SmSanitizer* san = sm_->sanitizer()) [[unlikely]] {
      san->on_cta_sync();
    }
  }

  /// Raw shared-memory storage (kernels address it via lds/sts offsets;
  /// this pointer backs those accesses).
  std::byte* smem() { return sm_->smem(); }
  std::size_t smem_bytes() const { return cfg_->smem_bytes; }

  Device& device() { return sm_->device(); }
  KernelStats& stats() { return sm_->stats(); }
  SmContext& sm() { return *sm_; }

 private:
  SmContext* sm_;
  const LaunchConfig* cfg_;
  int cta_id_;
};

inline KernelStats& Warp::stats() { return cta_->stats(); }
inline Device& Warp::device() { return cta_->device(); }
inline SmContext& Warp::sm() { return cta_->sm(); }
inline int Warp::sm_id() const { return cta_->sm_id(); }

inline void Warp::count(Op op, std::uint64_t n) {
  stats().op(op) += n;
  sm().watchdog_tick(n);
  if (SmTrace* t = sm().trace()) [[unlikely]] {
    t->on_ops(op, n, cta_->cta_id(), warp_id_);
  }
}

inline void Warp::fence() { count(Op::kBar); }

inline void Warp::bar_sync(std::uint32_t mask) {
  count(Op::kBar);
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_bar_arrive(warp_id_, mask);
  }
}

}  // namespace vsparse::gpusim

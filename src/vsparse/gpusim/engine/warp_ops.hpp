// Warp memory/shuffle operation bodies — kept header-only so they
// inline into kernel loops.  Every operation performs the real data
// movement *and* records the hardware events (requests, 32 B sectors,
// L1/L2 hits, bank conflicts) that the paper's profiling sections
// analyze.  All counters land in the executing SM's private stats
// block; the only shared structure touched is the slice-locked L2.
#pragma once

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>
#include <type_traits>

#include "vsparse/gpusim/engine/cta.hpp"

namespace vsparse::gpusim {

namespace detail {

/// Expand a segmented-affine span descriptor into per-lane addresses —
/// the divergent form — for the span ops' fallback path.  Lanes beyond
/// segs*width keep their zero-initialized value (never in the mask).
template <class A>
inline void expand_span(const A* seg_base, int segs, int width, std::uint32_t stride,
                        Lanes<A>& out) {
  for (int seg = 0; seg < segs; ++seg) {
    for (int t = 0; t < width; ++t) {
      const int lane = seg * width + t;
      if (lane >= 32) return;
      out[static_cast<std::size_t>(lane)] =
          seg_base[seg] + static_cast<A>(t) * static_cast<A>(stride);
    }
  }
}

/// Active-lane mask of one `width`-lane segment (relative lane bits).
inline std::uint32_t span_seg_mask(std::uint32_t mask, int seg, int width) {
  return width >= 32 ? mask : (mask >> (seg * width)) & ((1u << width) - 1u);
}

/// Full-warp mask of a segs x width span (every describable lane on).
inline std::uint32_t span_full_mask(int segs, int width) {
  const int lanes = segs * width;
  return lanes >= 32 ? kFullMask : (1u << lanes) - 1u;
}

/// Collects the unique 32 B sectors touched by one warp memory request.
/// Naturally-aligned accesses of size <= 32 B touch exactly one sector
/// per lane, so at most 32 entries.
class SectorSet {
 public:
  void insert(std::uint64_t sector) {
    for (int i = 0; i < n_; ++i) {
      if (sectors_[i] == sector) return;
    }
    sectors_[n_++] = sector;
  }
  int size() const { return n_; }
  std::uint64_t operator[](int i) const { return sectors_[i]; }

 private:
  std::uint64_t sectors_[32];
  int n_ = 0;
};

}  // namespace detail

template <class V>
void Warp::ldg(const AddrLanes& addr, Lanes<V>& dst, std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  KernelStats& s = stats();
  count(Op::kLdg);
  if constexpr (sizeof(V) == 2) {
    ++s.ldg16;
  } else if constexpr (sizeof(V) == 4) {
    ++s.ldg32;
  } else if constexpr (sizeof(V) == 8) {
    ++s.ldg64;
  } else {
    ++s.ldg128;
  }
  if (mask == 0) return;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_global_load(warp_id_, addr, mask, sizeof(V));
  }

  Device& dev = device();
  FaultState* faults = sm().faults();  // null ⇒ fault-free fast path
  detail::SectorSet sectors;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t a = addr[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(a % sizeof(V) == 0);  // natural alignment, as CUDA requires
    std::memcpy(&dst[static_cast<std::size_t>(lane)],
                dev.translate(a, sizeof(V)), sizeof(V));
    if (faults != nullptr) [[unlikely]] {
      faults->on_global_read(a, &dst[static_cast<std::size_t>(lane)],
                             sizeof(V), s);
    }
    sectors.insert(a & ~std::uint64_t{31});
  }
  s.global_load_requests += 1;
  s.global_load_sectors += static_cast<std::uint64_t>(sectors.size());
  SectorCache& l1 = sm().l1();
  ShardedCache& l2 = dev.l2();
  for (int i = 0; i < sectors.size(); ++i) {
    if (l1.access(sectors[i])) {
      ++s.l1_sector_hits;
    } else {
      ++s.l1_sector_misses;
      if (l2.access(sectors[i])) {
        ++s.l2_sector_hits;
      } else {
        ++s.l2_sector_misses;
        s.dram_read_bytes += 32;
      }
    }
  }
}

template <class V>
void Warp::stg(const AddrLanes& addr, const Lanes<V>& src,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  KernelStats& s = stats();
  count(Op::kStg);
  if (mask == 0) return;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_global_store(warp_id_, addr, mask, sizeof(V));
  }

  Device& dev = device();
  detail::SectorSet sectors;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t a = addr[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(a % sizeof(V) == 0);
    std::memcpy(dev.translate(a, sizeof(V)),
                &src[static_cast<std::size_t>(lane)], sizeof(V));
    sectors.insert(a & ~std::uint64_t{31});
  }
  s.global_store_requests += 1;
  s.global_store_sectors += static_cast<std::uint64_t>(sectors.size());
  SectorCache& l1 = sm().l1();
  ShardedCache& l2 = dev.l2();
  for (int i = 0; i < sectors.size(); ++i) {
    l1.invalidate_sector(sectors[i]);  // keep L1 coherent with the store
    if (!l2.access(sectors[i])) {
      ++s.l2_sector_misses;
      s.dram_write_bytes += 32;
    } else {
      ++s.l2_sector_hits;
    }
  }
}

template <class V>
void Warp::lds(const Lanes<std::uint32_t>& off, Lanes<V>& dst,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  KernelStats& s = stats();
  count(Op::kLds);
  if (mask == 0) return;
  // Sanitize before executing: an OOB lds must be *reported* before the
  // always-on bounds check below unwinds the launch.
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_smem_load(warp_id_, off, mask, sizeof(V));
  }
  s.smem_load_requests += 1;
  FaultState* faults = sm().faults();  // null ⇒ fault-free fast path

  // Bank-conflict model: lanes whose first 4 B word maps to the same
  // bank but a *different* word serialize; same word broadcasts.
  int bank_word[32];
  int bank_count[32] = {};
  int lanes_active = 0;
  std::byte* smem = cta_->smem();
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint32_t o = off[static_cast<std::size_t>(lane)];
    VSPARSE_CHECK_MSG(o + sizeof(V) <= cta_->smem_bytes(),
                      "smem OOB load at offset " << o);
    std::memcpy(&dst[static_cast<std::size_t>(lane)], smem + o, sizeof(V));
    if (faults != nullptr) [[unlikely]] {
      faults->on_smem_read(o, &dst[static_cast<std::size_t>(lane)], sizeof(V),
                           s);
    }
    const int word = static_cast<int>(o / 4);
    const int bank = word % 32;
    // Count distinct words per bank (approximate: treat each lane's
    // first word as its bank access).
    bool dup = false;
    for (int l2i = 0; l2i < lanes_active; ++l2i) {
      if (bank_word[l2i] == word) {
        dup = true;
        break;
      }
    }
    bank_word[lanes_active++] = word;
    if (!dup) ++bank_count[bank];
  }
  int degree = 1;
  for (int b = 0; b < 32; ++b) degree = std::max(degree, bank_count[b]);
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts +=
      static_cast<std::uint64_t>(degree) * static_cast<std::uint64_t>(width_factor);
  s.smem_load_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

template <class V>
void Warp::sts(const Lanes<std::uint32_t>& off, const Lanes<V>& src,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  KernelStats& s = stats();
  count(Op::kSts);
  if (mask == 0) return;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_smem_store(warp_id_, off, mask, sizeof(V));
  }
  s.smem_store_requests += 1;

  std::byte* smem = cta_->smem();
  int lanes_active = 0;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint32_t o = off[static_cast<std::size_t>(lane)];
    VSPARSE_CHECK_MSG(o + sizeof(V) <= cta_->smem_bytes(),
                      "smem OOB store at offset " << o);
    std::memcpy(smem + o, &src[static_cast<std::size_t>(lane)], sizeof(V));
    ++lanes_active;
  }
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts += static_cast<std::uint64_t>(width_factor);
  s.smem_store_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

// ---- span (warp-granular) forms --------------------------------------
//
// Each span op is the batched twin of the per-lane op above it: the
// kernel states the address pattern (segments of an affine sequence)
// and the engine services every segment with one hull translation /
// bounds check and one monotone sector or closed-form bank walk.
// Counter equivalence with the per-lane forms is argued case-by-case
// in DESIGN.md §2h; when a sanitizer or fault plan is attached the
// descriptor is expanded into lane arrays and the per-lane op runs, so
// the diagnostic surfaces observe the exact per-lane sequence.

template <class V>
void Warp::ldg_span(const std::uint64_t* seg_base, int segs, int width,
                    std::uint32_t stride, Lanes<V>& dst, std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  VSPARSE_DCHECK(segs >= 1 && width >= 1 && segs * width <= 32);
  VSPARSE_DCHECK(segs * width >= 32 || (mask >> (segs * width)) == 0);
  if (sm().sanitizer() != nullptr || sm().faults() != nullptr) [[unlikely]] {
    AddrLanes addr{};
    detail::expand_span(seg_base, segs, width, stride, addr);
    ldg(addr, dst, mask);
    return;
  }
  KernelStats& s = stats();
  count(Op::kLdg);
  if constexpr (sizeof(V) == 2) {
    ++s.ldg16;
  } else if constexpr (sizeof(V) == 4) {
    ++s.ldg32;
  } else if constexpr (sizeof(V) == 8) {
    ++s.ldg64;
  } else {
    ++s.ldg128;
  }
  if (mask == 0) return;

  Device& dev = device();
  SectorCache& l1 = sm().l1();
  ShardedCache& l2 = dev.l2();
  std::uint64_t nsec = 0;
  // Unique sectors arrive in per-lane first-touch order, ascending
  // within a segment — so consecutive touches of the same cache line
  // can be merged into ONE probe per cache level (a 4-bit sector mask
  // instead of up to 4 tag lookups).  SetArray::access_line documents
  // why the merged probe is state- and counter-identical to the
  // per-sector sequence; merging only coalesces *adjacent* touches, so
  // interleavings with other lines are preserved exactly.
  const std::uint64_t line_bytes =
      static_cast<std::uint64_t>(l1.line_bytes());
  const bool batch =
      line_bytes == static_cast<std::uint64_t>(l2.line_bytes()) &&
      line_bytes >= 32 && line_bytes <= 32 * 32 &&
      (line_bytes & (line_bytes - 1)) == 0;
  std::uint64_t cur_line = ~std::uint64_t{0};
  std::uint32_t cur_bits = 0;
  const auto flush = [&] {
    if (cur_bits == 0) return;
    const std::uint32_t hits = l1.access_line(cur_line, cur_bits);
    const int nb = std::popcount(cur_bits);
    const int nh = std::popcount(hits);
    s.l1_sector_hits += static_cast<std::uint64_t>(nh);
    s.l1_sector_misses += static_cast<std::uint64_t>(nb - nh);
    if (const std::uint32_t miss = cur_bits & ~hits; miss != 0) {
      const std::uint32_t h2 = l2.access_line(cur_line, miss);
      const int nm = std::popcount(miss);
      const int nh2 = std::popcount(h2);
      s.l2_sector_hits += static_cast<std::uint64_t>(nh2);
      s.l2_sector_misses += static_cast<std::uint64_t>(nm - nh2);
      s.dram_read_bytes += 32u * static_cast<std::uint64_t>(nm - nh2);
    }
    cur_bits = 0;
  };
  const auto touch = [&](std::uint64_t sec) {
    ++nsec;
    if (!batch) [[unlikely]] {
      // Mismatched/unusual line geometry: per-sector walk, identical to
      // the per-lane op's hierarchy accounting.
      if (l1.access(sec)) {
        ++s.l1_sector_hits;
      } else {
        ++s.l1_sector_misses;
        if (l2.access(sec)) {
          ++s.l2_sector_hits;
        } else {
          ++s.l2_sector_misses;
          s.dram_read_bytes += 32;
        }
      }
      return;
    }
    const std::uint64_t line = sec & ~(line_bytes - 1);
    if (line != cur_line) {
      flush();
      cur_line = line;
    }
    cur_bits |= 1u << ((sec - line) >> 5);
  };
  // Fused fast path: when every active segment is a contiguous lane run
  // with stride <= 32, each segment's sector footprint is exactly the
  // closed interval [first, last] step 32 (consecutive lane addresses
  // advance < one sector, so none is skipped and all are distinct).
  // Cross-segment dedup then reduces to interval-membership tests
  // against the previously emitted segments, so sectors can be fed to
  // the caches inline — no SectorSet, no second pass — while keeping
  // the per-lane first-touch order (segment-major, ascending).
  bool fused = stride <= 32;
  for (int seg = 0; fused && seg < segs; ++seg) {
    const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
    if (seg_mask == 0) continue;
    const std::uint32_t run = seg_mask >> std::countr_zero(seg_mask);
    fused = (run & (run + 1)) == 0;
  }
  detail::SectorSet sectors;
  std::uint64_t ivl_first[32];
  std::uint64_t ivl_last[32];
  int nivl = 0;
  for (int seg = 0; seg < segs; ++seg) {
    const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
    if (seg_mask == 0) continue;
    const int lo = std::countr_zero(seg_mask);
    const int hi = 31 - std::countl_zero(seg_mask);
    const std::uint64_t base = seg_base[seg];
    VSPARSE_DCHECK(base % sizeof(V) == 0);
    VSPARSE_DCHECK(hi == lo || stride % sizeof(V) == 0);
    // One bounds check for the whole segment: the arena is one
    // contiguous [0, used) region, so the hull [first lane's start,
    // last lane's end) is in bounds iff every active lane is.
    const std::byte* hull =
        dev.translate(base + static_cast<std::uint64_t>(lo) * stride,
                      static_cast<std::size_t>(hi - lo) * stride + sizeof(V));
    if (fused) {
      if (stride == sizeof(V)) {
        std::memcpy(&dst[static_cast<std::size_t>(seg * width + lo)], hull,
                    static_cast<std::size_t>(hi - lo + 1) * sizeof(V));
      } else {
        for (int t = lo; t <= hi; ++t) {
          std::memcpy(&dst[static_cast<std::size_t>(seg * width + t)],
                      hull + static_cast<std::size_t>(t - lo) * stride,
                      sizeof(V));
        }
      }
      const std::uint64_t first =
          (base + static_cast<std::uint64_t>(lo) * stride) & ~std::uint64_t{31};
      const std::uint64_t last =
          (base + static_cast<std::uint64_t>(hi) * stride) & ~std::uint64_t{31};
      for (std::uint64_t sec = first; sec <= last; sec += 32) {
        bool seen = false;
        for (int i = 0; i < nivl; ++i) {
          if (sec >= ivl_first[i] && sec <= ivl_last[i]) {
            seen = true;
            break;
          }
        }
        if (!seen) touch(sec);
      }
      ivl_first[nivl] = first;
      ivl_last[nivl] = last;
      ++nivl;
      continue;
    }
    // General path: monotone per-segment walk with compare-with-previous
    // dedup (equal sectors are adjacent because stride >= 0 makes the
    // sequence monotone); the SectorSet handles cross-segment repeats in
    // the same first-touch order as the per-lane loop.
    const std::uint32_t crun = seg_mask >> lo;
    std::uint64_t prev = ~std::uint64_t{0};
    if ((crun & (crun + 1)) == 0) {
      if (stride == sizeof(V)) {
        std::memcpy(&dst[static_cast<std::size_t>(seg * width + lo)], hull,
                    static_cast<std::size_t>(hi - lo + 1) * sizeof(V));
      } else {
        for (int t = lo; t <= hi; ++t) {
          std::memcpy(&dst[static_cast<std::size_t>(seg * width + t)],
                      hull + static_cast<std::size_t>(t - lo) * stride,
                      sizeof(V));
        }
      }
      for (int t = lo; t <= hi; ++t) {
        const std::uint64_t sec =
            (base + static_cast<std::uint64_t>(t) * stride) &
            ~std::uint64_t{31};
        if (sec != prev) {
          sectors.insert(sec);
          prev = sec;
        }
      }
      continue;
    }
    for (std::uint32_t m = seg_mask; m != 0; m &= m - 1) {
      const int t = std::countr_zero(m);
      std::memcpy(&dst[static_cast<std::size_t>(seg * width + t)],
                  hull + static_cast<std::size_t>(t - lo) * stride, sizeof(V));
      const std::uint64_t sec =
          (base + static_cast<std::uint64_t>(t) * stride) & ~std::uint64_t{31};
      if (sec != prev) {
        sectors.insert(sec);
        prev = sec;
      }
    }
  }
  for (int i = 0; i < sectors.size(); ++i) touch(sectors[i]);
  flush();
  s.global_load_requests += 1;
  s.global_load_sectors += nsec;
}

template <class V>
void Warp::ldg_span(std::uint64_t base, std::uint32_t stride, Lanes<V>& dst,
                    std::uint32_t mask) {
  ldg_span(&base, 1, 32, stride, dst, mask);
}

template <class V>
void Warp::stg_span(const std::uint64_t* seg_base, int segs, int width,
                    std::uint32_t stride, const Lanes<V>& src,
                    std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  VSPARSE_DCHECK(segs >= 1 && width >= 1 && segs * width <= 32);
  VSPARSE_DCHECK(segs * width >= 32 || (mask >> (segs * width)) == 0);
  if (sm().sanitizer() != nullptr) [[unlikely]] {
    AddrLanes addr{};
    detail::expand_span(seg_base, segs, width, stride, addr);
    stg(addr, src, mask);
    return;
  }
  KernelStats& s = stats();
  count(Op::kStg);
  if (mask == 0) return;

  Device& dev = device();
  SectorCache& l1 = sm().l1();
  ShardedCache& l2 = dev.l2();
  std::uint64_t nsec = 0;
  // Same line-batched touch as ldg_span (see the argument there): one
  // L1 invalidate + one L2 probe per line instead of per sector.
  const std::uint64_t line_bytes =
      static_cast<std::uint64_t>(l1.line_bytes());
  const bool batch =
      line_bytes == static_cast<std::uint64_t>(l2.line_bytes()) &&
      line_bytes >= 32 && line_bytes <= 32 * 32 &&
      (line_bytes & (line_bytes - 1)) == 0;
  std::uint64_t cur_line = ~std::uint64_t{0};
  std::uint32_t cur_bits = 0;
  const auto flush = [&] {
    if (cur_bits == 0) return;
    l1.invalidate_line(cur_line, cur_bits);  // keep L1 coherent
    const std::uint32_t h2 = l2.access_line(cur_line, cur_bits);
    const int nb = std::popcount(cur_bits);
    const int nh2 = std::popcount(h2);
    s.l2_sector_hits += static_cast<std::uint64_t>(nh2);
    s.l2_sector_misses += static_cast<std::uint64_t>(nb - nh2);
    s.dram_write_bytes += 32u * static_cast<std::uint64_t>(nb - nh2);
    cur_bits = 0;
  };
  const auto touch = [&](std::uint64_t sec) {
    ++nsec;
    if (!batch) [[unlikely]] {
      l1.invalidate_sector(sec);  // keep L1 coherent with the store
      if (!l2.access(sec)) {
        ++s.l2_sector_misses;
        s.dram_write_bytes += 32;
      } else {
        ++s.l2_sector_hits;
      }
      return;
    }
    const std::uint64_t line = sec & ~(line_bytes - 1);
    if (line != cur_line) {
      flush();
      cur_line = line;
    }
    cur_bits |= 1u << ((sec - line) >> 5);
  };
  // Same fused interval-dedup fast path as ldg_span (see the argument
  // there): contiguous runs with stride <= 32 emit their sectors inline
  // in per-lane first-touch order.
  bool fused = stride <= 32;
  for (int seg = 0; fused && seg < segs; ++seg) {
    const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
    if (seg_mask == 0) continue;
    const std::uint32_t run = seg_mask >> std::countr_zero(seg_mask);
    fused = (run & (run + 1)) == 0;
  }
  detail::SectorSet sectors;
  std::uint64_t ivl_first[32];
  std::uint64_t ivl_last[32];
  int nivl = 0;
  for (int seg = 0; seg < segs; ++seg) {
    const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
    if (seg_mask == 0) continue;
    const int lo = std::countr_zero(seg_mask);
    const int hi = 31 - std::countl_zero(seg_mask);
    const std::uint64_t base = seg_base[seg];
    VSPARSE_DCHECK(base % sizeof(V) == 0);
    VSPARSE_DCHECK(hi == lo || stride % sizeof(V) == 0);
    std::byte* hull =
        dev.translate(base + static_cast<std::uint64_t>(lo) * stride,
                      static_cast<std::size_t>(hi - lo) * stride + sizeof(V));
    if (fused) {
      if (stride == sizeof(V)) {
        std::memcpy(hull, &src[static_cast<std::size_t>(seg * width + lo)],
                    static_cast<std::size_t>(hi - lo + 1) * sizeof(V));
      } else {
        for (int t = lo; t <= hi; ++t) {
          std::memcpy(hull + static_cast<std::size_t>(t - lo) * stride,
                      &src[static_cast<std::size_t>(seg * width + t)],
                      sizeof(V));
        }
      }
      const std::uint64_t first =
          (base + static_cast<std::uint64_t>(lo) * stride) & ~std::uint64_t{31};
      const std::uint64_t last =
          (base + static_cast<std::uint64_t>(hi) * stride) & ~std::uint64_t{31};
      for (std::uint64_t sec = first; sec <= last; sec += 32) {
        bool seen = false;
        for (int i = 0; i < nivl; ++i) {
          if (sec >= ivl_first[i] && sec <= ivl_last[i]) {
            seen = true;
            break;
          }
        }
        if (!seen) touch(sec);
      }
      ivl_first[nivl] = first;
      ivl_last[nivl] = last;
      ++nivl;
      continue;
    }
    const std::uint32_t crun = seg_mask >> lo;
    std::uint64_t prev = ~std::uint64_t{0};
    if ((crun & (crun + 1)) == 0) {
      if (stride == sizeof(V)) {
        std::memcpy(hull, &src[static_cast<std::size_t>(seg * width + lo)],
                    static_cast<std::size_t>(hi - lo + 1) * sizeof(V));
      } else {
        for (int t = lo; t <= hi; ++t) {
          std::memcpy(hull + static_cast<std::size_t>(t - lo) * stride,
                      &src[static_cast<std::size_t>(seg * width + t)],
                      sizeof(V));
        }
      }
      for (int t = lo; t <= hi; ++t) {
        const std::uint64_t sec =
            (base + static_cast<std::uint64_t>(t) * stride) &
            ~std::uint64_t{31};
        if (sec != prev) {
          sectors.insert(sec);
          prev = sec;
        }
      }
      continue;
    }
    for (std::uint32_t m = seg_mask; m != 0; m &= m - 1) {
      const int t = std::countr_zero(m);
      std::memcpy(hull + static_cast<std::size_t>(t - lo) * stride,
                  &src[static_cast<std::size_t>(seg * width + t)], sizeof(V));
      const std::uint64_t sec =
          (base + static_cast<std::uint64_t>(t) * stride) & ~std::uint64_t{31};
      if (sec != prev) {
        sectors.insert(sec);
        prev = sec;
      }
    }
  }
  for (int i = 0; i < sectors.size(); ++i) touch(sectors[i]);
  flush();
  s.global_store_requests += 1;
  s.global_store_sectors += nsec;
}

template <class V>
void Warp::stg_span(std::uint64_t base, std::uint32_t stride,
                    const Lanes<V>& src, std::uint32_t mask) {
  stg_span(&base, 1, 32, stride, src, mask);
}

template <class V>
void Warp::lds_span(const std::uint32_t* seg_off, int segs, int width,
                    std::uint32_t stride, Lanes<V>& dst, std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  VSPARSE_DCHECK(segs >= 1 && width >= 1 && segs * width <= 32);
  VSPARSE_DCHECK(segs * width >= 32 || (mask >> (segs * width)) == 0);
  // Racecheck span fast path: a sanitized span that the admission hook
  // proves in-bounds and overlap-free (via the static verifier's
  // span primitive) runs the span memory path below; otherwise it
  // expands onto the per-lane op for exact per-byte reporting.  A
  // fault plan always diverts (the fault surface is per-lane).
  bool divert = sm().faults() != nullptr;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    divert = divert || !san->on_smem_load_span(warp_id_, seg_off, segs, width,
                                               stride, mask, sizeof(V));
  }
  if (!divert && mask != 0) {
    // Hull bounds pre-scan.  On OOB, divert so the per-lane path
    // reports the exact offending lane offset (and throws identically).
    for (int seg = 0; seg < segs; ++seg) {
      const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
      if (seg_mask == 0) continue;
      const int hi = 31 - std::countl_zero(seg_mask);
      if (static_cast<std::uint64_t>(seg_off[seg]) +
              static_cast<std::uint64_t>(hi) * stride + sizeof(V) >
          cta_->smem_bytes()) {
        divert = true;
        break;
      }
    }
  }
  if (divert) [[unlikely]] {
    Lanes<std::uint32_t> off{};
    detail::expand_span(seg_off, segs, width, stride, off);
    lds(off, dst, mask);
    return;
  }
  KernelStats& s = stats();
  count(Op::kLds);
  if (mask == 0) return;
  s.smem_load_requests += 1;

  std::byte* smem = cta_->smem();
  int lanes_active = 0;
  for (int seg = 0; seg < segs; ++seg) {
    const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
    if (seg_mask == 0) continue;
    lanes_active += std::popcount(seg_mask);
    const std::uint32_t o0 = seg_off[seg];
    const int lo = std::countr_zero(seg_mask);
    const std::uint32_t run = seg_mask >> lo;
    if ((run & (run + 1)) == 0 && stride == sizeof(V)) {
      const int hi = 31 - std::countl_zero(seg_mask);
      std::memcpy(&dst[static_cast<std::size_t>(seg * width + lo)],
                  smem + o0 + static_cast<std::size_t>(lo) * stride,
                  static_cast<std::size_t>(hi - lo + 1) * sizeof(V));
      continue;
    }
    if (stride == 0) {
      // Uniform segment: one shared-memory read replicated to every
      // active lane (same bytes the per-lane loop would copy).
      V val;
      std::memcpy(&val, smem + o0, sizeof(V));
      for (std::uint32_t m = seg_mask; m != 0; m &= m - 1) {
        dst[static_cast<std::size_t>(seg * width + std::countr_zero(m))] = val;
      }
      continue;
    }
    for (std::uint32_t m = seg_mask; m != 0; m &= m - 1) {
      const int t = std::countr_zero(m);
      std::memcpy(&dst[static_cast<std::size_t>(seg * width + t)],
                  smem + o0 + static_cast<std::size_t>(t) * stride, sizeof(V));
    }
  }

  // Bank-conflict degree.  Closed form for the full-mask affine /
  // repeated-segment patterns and for uniform (stride 0) segments
  // (DESIGN.md §2h); otherwise replay the per-lane scan on the expanded
  // words.
  int degree = 1;
  bool closed_form = mask == detail::span_full_mask(segs, width) &&
                     stride % 4 == 0 && seg_off[0] % 4 == 0;
  for (int seg = 1; closed_form && seg < segs; ++seg) {
    closed_form = seg_off[seg] == seg_off[0];
  }
  if (closed_form) {
    const int wstep = static_cast<int>(stride / 4);
    if (wstep != 0) {
      // Words within a segment are strictly monotone (no duplicates);
      // lanes t and t' share a bank iff (t - t') * wstep ≡ 0 (mod 32),
      // i.e. every 32/gcd(wstep,32) lanes.  Repeated segments re-read
      // the first segment's words and count as broadcasts (duplicates).
      const int period = 32 / std::gcd(wstep, 32);
      degree = (width + period - 1) / period;
    }
  } else if (stride == 0) {
    // Uniform segments: every lane of segment s reads seg_off[s]'s
    // word, so the per-lane scan reduces to counting, per bank, the
    // distinct words among the active segments (first lane of a
    // segment is the only possible non-duplicate).
    std::uint32_t words[32];
    int bank_count[32] = {};
    int nw = 0;
    for (int seg = 0; seg < segs; ++seg) {
      if (detail::span_seg_mask(mask, seg, width) == 0) continue;
      const std::uint32_t word = seg_off[seg] / 4;
      bool dup = false;
      for (int i = 0; i < nw; ++i) {
        if (words[i] == word) {
          dup = true;
          break;
        }
      }
      words[nw++] = word;
      if (!dup) {
        const int d = ++bank_count[word % 32];
        degree = std::max(degree, d);
      }
    }
  } else {
    int bank_word[32];
    int bank_count[32] = {};
    int seen = 0;
    for (int seg = 0; seg < segs; ++seg) {
      const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
      for (std::uint32_t m = seg_mask; m != 0; m &= m - 1) {
        const int t = std::countr_zero(m);
        const int word =
            static_cast<int>((seg_off[seg] + static_cast<std::uint32_t>(t) *
                                                 stride) /
                             4);
        bool dup = false;
        for (int i = 0; i < seen; ++i) {
          if (bank_word[i] == word) {
            dup = true;
            break;
          }
        }
        bank_word[seen++] = word;
        if (!dup) ++bank_count[word % 32];
      }
    }
    for (int b = 0; b < 32; ++b) degree = std::max(degree, bank_count[b]);
  }
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts += static_cast<std::uint64_t>(degree) *
                       static_cast<std::uint64_t>(width_factor);
  s.smem_load_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

template <class V>
void Warp::lds_span(std::uint32_t off, std::uint32_t stride, Lanes<V>& dst,
                    std::uint32_t mask) {
  lds_span(&off, 1, 32, stride, dst, mask);
}

template <class V>
void Warp::sts_span(const std::uint32_t* seg_off, int segs, int width,
                    std::uint32_t stride, const Lanes<V>& src,
                    std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  VSPARSE_DCHECK(segs >= 1 && width >= 1 && segs * width <= 32);
  VSPARSE_DCHECK(segs * width >= 32 || (mask >> (segs * width)) == 0);
  // Same admission contract as lds_span above.
  bool divert = false;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    divert = !san->on_smem_store_span(warp_id_, seg_off, segs, width, stride,
                                      mask, sizeof(V));
  }
  if (!divert && mask != 0) {
    for (int seg = 0; seg < segs; ++seg) {
      const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
      if (seg_mask == 0) continue;
      const int hi = 31 - std::countl_zero(seg_mask);
      if (static_cast<std::uint64_t>(seg_off[seg]) +
              static_cast<std::uint64_t>(hi) * stride + sizeof(V) >
          cta_->smem_bytes()) {
        divert = true;
        break;
      }
    }
  }
  if (divert) [[unlikely]] {
    Lanes<std::uint32_t> off{};
    detail::expand_span(seg_off, segs, width, stride, off);
    sts(off, src, mask);
    return;
  }
  KernelStats& s = stats();
  count(Op::kSts);
  if (mask == 0) return;
  s.smem_store_requests += 1;

  std::byte* smem = cta_->smem();
  int lanes_active = 0;
  for (int seg = 0; seg < segs; ++seg) {
    const std::uint32_t seg_mask = detail::span_seg_mask(mask, seg, width);
    if (seg_mask == 0) continue;
    lanes_active += std::popcount(seg_mask);
    const std::uint32_t o0 = seg_off[seg];
    const int lo = std::countr_zero(seg_mask);
    const std::uint32_t run = seg_mask >> lo;
    if ((run & (run + 1)) == 0 && stride == sizeof(V)) {
      const int hi = 31 - std::countl_zero(seg_mask);
      std::memcpy(smem + o0 + static_cast<std::size_t>(lo) * stride,
                  &src[static_cast<std::size_t>(seg * width + lo)],
                  static_cast<std::size_t>(hi - lo + 1) * sizeof(V));
      continue;
    }
    for (std::uint32_t m = seg_mask; m != 0; m &= m - 1) {
      const int t = std::countr_zero(m);
      std::memcpy(smem + o0 + static_cast<std::size_t>(t) * stride,
                  &src[static_cast<std::size_t>(seg * width + t)], sizeof(V));
    }
  }
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts += static_cast<std::uint64_t>(width_factor);
  s.smem_store_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

template <class V>
void Warp::sts_span(std::uint32_t off, std::uint32_t stride,
                    const Lanes<V>& src, std::uint32_t mask) {
  sts_span(&off, 1, 32, stride, src, mask);
}

template <class T>
void Warp::shfl(Lanes<T>& dst, const Lanes<T>& src, const Lanes<int>& srclane,
                std::uint32_t mask) {
  count(Op::kShfl);
  Lanes<T> tmp;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) {
      tmp[static_cast<std::size_t>(lane)] = dst[static_cast<std::size_t>(lane)];
      continue;
    }
    const int sl = srclane[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(sl >= 0 && sl < 32);
    tmp[static_cast<std::size_t>(lane)] = src[static_cast<std::size_t>(sl)];
  }
  dst = tmp;
}

template <class T>
void Warp::shfl_xor(Lanes<T>& dst, const Lanes<T>& src, int xor_mask,
                    std::uint32_t mask) {
  Lanes<int> srclane;
  for (int lane = 0; lane < 32; ++lane) {
    srclane[static_cast<std::size_t>(lane)] = lane ^ xor_mask;
  }
  shfl(dst, src, srclane, mask);
}

}  // namespace vsparse::gpusim

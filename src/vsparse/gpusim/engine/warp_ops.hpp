// Warp memory/shuffle operation bodies — kept header-only so they
// inline into kernel loops.  Every operation performs the real data
// movement *and* records the hardware events (requests, 32 B sectors,
// L1/L2 hits, bank conflicts) that the paper's profiling sections
// analyze.  All counters land in the executing SM's private stats
// block; the only shared structure touched is the slice-locked L2.
#pragma once

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "vsparse/gpusim/engine/cta.hpp"

namespace vsparse::gpusim {

namespace detail {

/// Collects the unique 32 B sectors touched by one warp memory request.
/// Naturally-aligned accesses of size <= 32 B touch exactly one sector
/// per lane, so at most 32 entries.
class SectorSet {
 public:
  void insert(std::uint64_t sector) {
    for (int i = 0; i < n_; ++i) {
      if (sectors_[i] == sector) return;
    }
    sectors_[n_++] = sector;
  }
  int size() const { return n_; }
  std::uint64_t operator[](int i) const { return sectors_[i]; }

 private:
  std::uint64_t sectors_[32];
  int n_ = 0;
};

}  // namespace detail

template <class V>
void Warp::ldg(const AddrLanes& addr, Lanes<V>& dst, std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  KernelStats& s = stats();
  count(Op::kLdg);
  if constexpr (sizeof(V) == 2) {
    ++s.ldg16;
  } else if constexpr (sizeof(V) == 4) {
    ++s.ldg32;
  } else if constexpr (sizeof(V) == 8) {
    ++s.ldg64;
  } else {
    ++s.ldg128;
  }
  if (mask == 0) return;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_global_load(warp_id_, addr, mask, sizeof(V));
  }

  Device& dev = device();
  FaultState* faults = sm().faults();  // null ⇒ fault-free fast path
  detail::SectorSet sectors;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t a = addr[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(a % sizeof(V) == 0);  // natural alignment, as CUDA requires
    std::memcpy(&dst[static_cast<std::size_t>(lane)],
                dev.translate(a, sizeof(V)), sizeof(V));
    if (faults != nullptr) [[unlikely]] {
      faults->on_global_read(a, &dst[static_cast<std::size_t>(lane)],
                             sizeof(V), s);
    }
    sectors.insert(a & ~std::uint64_t{31});
  }
  s.global_load_requests += 1;
  s.global_load_sectors += static_cast<std::uint64_t>(sectors.size());
  SectorCache& l1 = sm().l1();
  ShardedCache& l2 = dev.l2();
  for (int i = 0; i < sectors.size(); ++i) {
    if (l1.access(sectors[i])) {
      ++s.l1_sector_hits;
    } else {
      ++s.l1_sector_misses;
      if (l2.access(sectors[i])) {
        ++s.l2_sector_hits;
      } else {
        ++s.l2_sector_misses;
        s.dram_read_bytes += 32;
      }
    }
  }
}

template <class V>
void Warp::stg(const AddrLanes& addr, const Lanes<V>& src,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(sizeof(V) == 2 || sizeof(V) == 4 || sizeof(V) == 8 ||
                sizeof(V) == 16);
  KernelStats& s = stats();
  count(Op::kStg);
  if (mask == 0) return;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_global_store(warp_id_, addr, mask, sizeof(V));
  }

  Device& dev = device();
  detail::SectorSet sectors;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t a = addr[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(a % sizeof(V) == 0);
    std::memcpy(dev.translate(a, sizeof(V)),
                &src[static_cast<std::size_t>(lane)], sizeof(V));
    sectors.insert(a & ~std::uint64_t{31});
  }
  s.global_store_requests += 1;
  s.global_store_sectors += static_cast<std::uint64_t>(sectors.size());
  SectorCache& l1 = sm().l1();
  ShardedCache& l2 = dev.l2();
  for (int i = 0; i < sectors.size(); ++i) {
    l1.invalidate_sector(sectors[i]);  // keep L1 coherent with the store
    if (!l2.access(sectors[i])) {
      ++s.l2_sector_misses;
      s.dram_write_bytes += 32;
    } else {
      ++s.l2_sector_hits;
    }
  }
}

template <class V>
void Warp::lds(const Lanes<std::uint32_t>& off, Lanes<V>& dst,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  KernelStats& s = stats();
  count(Op::kLds);
  if (mask == 0) return;
  // Sanitize before executing: an OOB lds must be *reported* before the
  // always-on bounds check below unwinds the launch.
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_smem_load(warp_id_, off, mask, sizeof(V));
  }
  s.smem_load_requests += 1;
  FaultState* faults = sm().faults();  // null ⇒ fault-free fast path

  // Bank-conflict model: lanes whose first 4 B word maps to the same
  // bank but a *different* word serialize; same word broadcasts.
  int bank_word[32];
  int bank_count[32] = {};
  int lanes_active = 0;
  std::byte* smem = cta_->smem();
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint32_t o = off[static_cast<std::size_t>(lane)];
    VSPARSE_CHECK_MSG(o + sizeof(V) <= cta_->smem_bytes(),
                      "smem OOB load at offset " << o);
    std::memcpy(&dst[static_cast<std::size_t>(lane)], smem + o, sizeof(V));
    if (faults != nullptr) [[unlikely]] {
      faults->on_smem_read(o, &dst[static_cast<std::size_t>(lane)], sizeof(V),
                           s);
    }
    const int word = static_cast<int>(o / 4);
    const int bank = word % 32;
    // Count distinct words per bank (approximate: treat each lane's
    // first word as its bank access).
    bool dup = false;
    for (int l2i = 0; l2i < lanes_active; ++l2i) {
      if (bank_word[l2i] == word) {
        dup = true;
        break;
      }
    }
    bank_word[lanes_active++] = word;
    if (!dup) ++bank_count[bank];
  }
  int degree = 1;
  for (int b = 0; b < 32; ++b) degree = std::max(degree, bank_count[b]);
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts +=
      static_cast<std::uint64_t>(degree) * static_cast<std::uint64_t>(width_factor);
  s.smem_load_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

template <class V>
void Warp::sts(const Lanes<std::uint32_t>& off, const Lanes<V>& src,
               std::uint32_t mask) {
  static_assert(std::is_trivially_copyable_v<V>);
  KernelStats& s = stats();
  count(Op::kSts);
  if (mask == 0) return;
  if (SmSanitizer* san = sm().sanitizer()) [[unlikely]] {
    san->on_smem_store(warp_id_, off, mask, sizeof(V));
  }
  s.smem_store_requests += 1;

  std::byte* smem = cta_->smem();
  int lanes_active = 0;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint32_t o = off[static_cast<std::size_t>(lane)];
    VSPARSE_CHECK_MSG(o + sizeof(V) <= cta_->smem_bytes(),
                      "smem OOB store at offset " << o);
    std::memcpy(smem + o, &src[static_cast<std::size_t>(lane)], sizeof(V));
    ++lanes_active;
  }
  const int width_factor =
      static_cast<int>(std::max<std::size_t>(1, sizeof(V) / 8));
  s.smem_wavefronts += static_cast<std::uint64_t>(width_factor);
  s.smem_store_bytes += static_cast<std::uint64_t>(lanes_active) * sizeof(V);
}

template <class T>
void Warp::shfl(Lanes<T>& dst, const Lanes<T>& src, const Lanes<int>& srclane,
                std::uint32_t mask) {
  count(Op::kShfl);
  Lanes<T> tmp;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) {
      tmp[static_cast<std::size_t>(lane)] = dst[static_cast<std::size_t>(lane)];
      continue;
    }
    const int sl = srclane[static_cast<std::size_t>(lane)];
    VSPARSE_DCHECK(sl >= 0 && sl < 32);
    tmp[static_cast<std::size_t>(lane)] = src[static_cast<std::size_t>(sl)];
  }
  dst = tmp;
}

template <class T>
void Warp::shfl_xor(Lanes<T>& dst, const Lanes<T>& src, int xor_mask,
                    std::uint32_t mask) {
  Lanes<int> srclane;
  for (int lane = 0; lane < 32; ++lane) {
    srclane[static_cast<std::size_t>(lane)] = lane ^ xor_mask;
  }
  shfl(dst, src, srclane, mask);
}

}  // namespace vsparse::gpusim

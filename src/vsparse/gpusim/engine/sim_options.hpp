// Host-side execution options for the simulator engine — how a launch
// is run, as opposed to what device is modeled (DeviceConfig).  Leaf
// header: included by Device (per-device defaults) and by every kernel
// entry point (per-call override).
#pragma once

#include <cstdint>
#include <vector>

#include "vsparse/gpusim/sanitizer/options.hpp"
#include "vsparse/gpusim/trace/options.hpp"

namespace vsparse::gpusim {

struct KernelStats;

struct SimOptions {
  /// Host worker threads the SM array is sharded across.
  ///   0  -> inherit the Device's configured default (which itself
  ///         defaults to 1).
  ///   1  -> serial: CTAs run to completion in launch order, exactly
  ///         the historical engine behavior (all counters, including
  ///         L2/DRAM, are bit-identical to it).
  ///   N  -> N workers; each SM's CTA list still runs in launch order
  ///         on a single worker, so functional results and all per-SM
  ///         counters (instructions, smem, L1, sectors/req) stay
  ///         bit-exact for any N.  Only the attribution/split of
  ///         L2 hit/miss and DRAM byte counters may shift, because
  ///         concurrent SMs interleave in the shared L2.
  int threads = 0;

  /// Optional out-parameter: when non-null, the launch fills it with
  /// one KernelStats block per SM (index = sm_id, size = num_sms) for
  /// the *most recent* launch — the per-SM view the merged return
  /// value is summed from.
  std::vector<KernelStats>* per_sm_stats = nullptr;

  /// Watchdog: maximum warp ops a single CTA body may issue before the
  /// launch is aborted with LaunchTimeoutError (gpusim/faults.hpp)
  /// carrying a per-SM progress dump.  0 -> inherit the Device default
  /// (which itself defaults to "disabled"); the same inherit chain as
  /// `threads`.  Guards against malformed inputs (e.g. a cyclic
  /// row_ptr) spinning a kernel loop forever.
  std::uint64_t watchdog_cta_ops = 0;

  /// Per-launch tracing (gpusim/trace/).  A launch whose TraceOptions
  /// has no sink inherits the Device's configured default — the same
  /// inherit chain as `threads`.  With no sink anywhere the engine
  /// takes a null-pointer fast path and the run is bit- and
  /// counter-identical to an untraced one.  Declared after the scalar
  /// options so existing designated initializers keep compiling.
  TraceOptions trace;

  /// Per-launch hazard analysis (gpusim/sanitizer/): racecheck /
  /// synccheck / initcheck / boundscheck against shadow state.  Same
  /// inherit chain and null-sink fast path as `trace`.  Declared last
  /// so existing designated initializers keep compiling.
  SanitizerOptions sanitize;
};

}  // namespace vsparse::gpusim

// Public launch entry point.
//
// Kernels are written as per-CTA C++ callables operating on `Cta` /
// `Warp` contexts, mirroring the structure of the paper's CUDA kernels:
//
//   launch(dev, cfg, [&](Cta& cta) {
//     Lanes<std::uint64_t> addr; Lanes<half4> frag;
//     ...compute per-lane addresses like the CUDA kernel would...
//     cta.warp(0).ldg(addr, frag);          // coalescing is *measured*
//     mma_m8n8k4(cta.warp(0), a, b, acc);   // octet-level tensor core
//   });
//
// CTAs are round-robin assigned to model SMs and each SM's CTA list
// runs to completion in launch order; warps within a CTA run
// phase-by-phase — `Cta::sync()` marks barrier boundaries, and kernels
// are written in the phased style (loop over warps per phase) so
// producer/consumer shared-memory patterns remain correct under serial
// warp execution.
//
// With SimOptions{threads = N} the SM array is sharded across N host
// worker threads (SmContexts are private per SM, the L2 is slice-
// locked).  Functional results and per-SM counters are bit-exact for
// any N; the serial default additionally reproduces the historical
// global CTA order, making L2/DRAM counters bit-exact too.  Returns
// the merged hardware counters for the launch.  L1s are born cold at
// launch start (kernel-boundary semantics); L2 persists across
// launches.
#pragma once

#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "vsparse/gpusim/engine/engine.hpp"
#include "vsparse/gpusim/engine/scheduler.hpp"
#include "vsparse/gpusim/engine/thread_pool.hpp"
#include "vsparse/gpusim/engine/warp_ops.hpp"

namespace vsparse::gpusim {

namespace engine_detail {

/// Run one CTA on its home SM: fresh zeroed smem, fresh watchdog
/// budget, then the body — called directly so `Body` inlines.
template <class Body>
void run_cta_direct(SmContext& sm, const LaunchConfig& cfg, int cta_id,
                    Body& body) {
  sm.prepare_smem(cfg.smem_bytes);
  sm.watchdog_reset();
  const std::uint64_t warps = static_cast<std::uint64_t>(cfg.cta_threads / 32);
  if (SmTrace* t = sm.trace()) {
    t->emit(TraceEventKind::kCtaBegin, cta_id, /*warp=*/-1, warps);
  }
  if (SmSanitizer* san = sm.sanitizer()) {
    san->on_cta_begin(cta_id, static_cast<int>(warps));
  }
  Cta cta(&sm, &cfg, cta_id);
  body(cta);
  // Only a CTA that ran to completion is checked for barrier-count
  // mismatches — an aborted body is not a synccheck finding.
  if (SmSanitizer* san = sm.sanitizer()) {
    san->on_cta_end();
  }
  sm.stats().ctas_launched += 1;
  sm.stats().warps_launched += warps;
  if (SmTrace* t = sm.trace()) {
    t->emit(TraceEventKind::kCtaEnd, cta_id, /*warp=*/-1);
  }
}

}  // namespace engine_detail

/// The devirtualized launch engine: the full scheduling/threading body,
/// specialized per kernel `Body` so the per-CTA call is direct (and
/// inlinable) instead of a std::function dispatch.  Cold
/// launch-boundary work (trace/sanitizer merge, error augmentation, the
/// global CTA counter) stays out-of-line in engine.cpp behind
/// engine_detail.  The registry launch thunks (kernels/registry.hpp)
/// reach this through `launch()`, making each of them a concrete,
/// monomorphic entry point for its kernel.
template <class Body>
KernelStats run_launch_direct(Device& dev, const LaunchConfig& cfg,
                              Body&& body_in, const SimOptions& opts = {}) {
  auto& body = body_in;  // run to completion before return; by-ref is safe
  engine_detail::check_device_serviceable(dev);
  VSPARSE_CHECK(cfg.grid >= 1);
  VSPARSE_CHECK(cfg.cta_threads >= 32 && cfg.cta_threads <= 1024 &&
                cfg.cta_threads % 32 == 0);
  VSPARSE_CHECK(cfg.smem_bytes <= dev.config().max_smem_per_cta);
  VSPARSE_CHECK(cfg.profile.regs_per_thread <=
                dev.config().max_regs_per_thread);

  Scheduler sched(cfg.grid, dev.config().num_sms);

  int threads = opts.threads > 0 ? opts.threads : dev.sim_options().threads;
  if (threads < 1) threads = 1;
  if (threads > sched.num_active_sms()) threads = sched.num_active_sms();

  const std::uint64_t watchdog = opts.watchdog_cta_ops > 0
                                     ? opts.watchdog_cta_ops
                                     : dev.sim_options().watchdog_cta_ops;

  // Tracing: the per-call TraceOptions win when they carry a sink,
  // otherwise the Device default applies (the `threads` inherit chain).
  const TraceOptions& tropts = opts.trace.sink != nullptr
                                   ? opts.trace
                                   : dev.sim_options().trace;

  // Sanitizing: same per-call-wins-else-device-default chain.
  const SanitizerOptions& sanopts = opts.sanitize.sink != nullptr
                                        ? opts.sanitize
                                        : dev.sim_options().sanitize;

  // per_sm_stats documents "the most recent launch": zero it up front
  // so a launch that unwinds (or one with a smaller active-SM set than
  // its predecessor) can never leave stale SM blocks behind.
  if (opts.per_sm_stats != nullptr) {
    opts.per_sm_stats->assign(static_cast<std::size_t>(dev.config().num_sms),
                              KernelStats{});
  }

  // Fresh per-SM contexts: cold L1s (= the kernel-boundary invalidation
  // the serial engine performed with flush_l1), empty counter blocks.
  std::vector<SmContext> sms;
  sms.reserve(static_cast<std::size_t>(sched.num_active_sms()));
  std::vector<SmTrace> traces;
  if (tropts.enabled()) {
    traces.reserve(static_cast<std::size_t>(sched.num_active_sms()));
  }
  // Sanitizer state: one collector per active SM plus one launch-wide
  // allocation snapshot (sorted, immutable — the boundscheck hot path
  // never takes the Device's alloc mutex).
  std::vector<SmSanitizer> sanitizers;
  std::vector<AllocRecord> alloc_snapshot;
  if (sanopts.enabled()) {
    alloc_snapshot = dev.allocation_snapshot();
    sanitizers.reserve(static_cast<std::size_t>(sched.num_active_sms()));
  }
  for (int sm = 0; sm < sched.num_active_sms(); ++sm) {
    sms.emplace_back(&dev, sm);
    sms.back().set_watchdog_limit(watchdog);
    if (tropts.enabled()) {
      traces.emplace_back(sm, tropts);
      sms.back().set_trace(&traces.back());
    }
    if (sanopts.enabled()) {
      sanitizers.emplace_back(sm, sanopts, &alloc_snapshot, cfg.smem_bytes);
      if (tropts.enabled()) sanitizers.back().set_trace(&traces.back());
      sms.back().set_sanitizer(&sanitizers.back());
    }
  }

  if (threads == 1) {
    // Serial path: CTAs run to completion in *global* launch order, so
    // the shared-L2 access sequence — and with it every L2/DRAM
    // counter — is bit-identical to the historical single-threaded
    // engine.
    try {
      for (int cta = 0; cta < cfg.grid; ++cta) {
        engine_detail::run_cta_direct(
            sms[static_cast<std::size_t>(sched.sm_of(cta))], cfg, cta, body);
      }
    } catch (...) {
      if (tropts.enabled()) {
        engine_detail::finish_trace(*tropts.sink, cfg, dev.config().num_sms,
                                    traces, sms, /*aborted=*/true);
      }
      if (sanopts.enabled()) {
        engine_detail::finish_sanitizer(*sanopts.sink, cfg, sanopts,
                                        sanitizers, /*aborted=*/true);
      }
      engine_detail::rethrow_launch_error(std::current_exception(), sms);
    }
  } else {
    // Parallel path: workers claim whole SMs and run each SM's CTA
    // list in launch order.  Per-SM state sees the same sequence as
    // the serial path; only the interleaving of accesses to the
    // slice-locked L2 differs.
    std::mutex error_mu;
    std::exception_ptr first_error;
    ThreadPool::instance().run(threads, [&] {
      for (int sm; (sm = sched.next_sm()) >= 0;) {
        SmContext& ctx = sms[static_cast<std::size_t>(sm)];
        try {
          for (int cta = sched.first_cta(sm); cta < cfg.grid;
               cta += sched.cta_stride()) {
            engine_detail::run_cta_direct(ctx, cfg, cta, body);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
    if (first_error) {
      if (tropts.enabled()) {
        engine_detail::finish_trace(*tropts.sink, cfg, dev.config().num_sms,
                                    traces, sms, /*aborted=*/true);
      }
      if (sanopts.enabled()) {
        engine_detail::finish_sanitizer(*sanopts.sink, cfg, sanopts,
                                        sanitizers, /*aborted=*/true);
      }
      engine_detail::rethrow_launch_error(first_error, sms);
    }
  }

  // Merge: uint64 sums are commutative and associative, so the merged
  // block is independent of which worker ran which SM.
  KernelStats total;
  for (const SmContext& sm : sms) total += sm.stats();
  engine_detail::note_simulated_ctas(total.ctas_launched);

  if (tropts.enabled()) {
    engine_detail::finish_trace(*tropts.sink, cfg, dev.config().num_sms,
                                traces, sms, /*aborted=*/false);
  }
  if (sanopts.enabled()) {
    engine_detail::finish_sanitizer(*sanopts.sink, cfg, sanopts, sanitizers,
                                    /*aborted=*/false);
  }

  if (opts.per_sm_stats) {
    for (const SmContext& sm : sms) {
      (*opts.per_sm_stats)[static_cast<std::size_t>(sm.sm_id())] = sm.stats();
    }
  }
  return total;
}

template <class Body>
KernelStats launch(Device& dev, const LaunchConfig& cfg, Body&& body,
                   const SimOptions& opts = {}) {
  return run_launch_direct(dev, cfg, std::forward<Body>(body), opts);
}

}  // namespace vsparse::gpusim

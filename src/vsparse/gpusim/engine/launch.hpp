// Public launch entry point.
//
// Kernels are written as per-CTA C++ callables operating on `Cta` /
// `Warp` contexts, mirroring the structure of the paper's CUDA kernels:
//
//   launch(dev, cfg, [&](Cta& cta) {
//     Lanes<std::uint64_t> addr; Lanes<half4> frag;
//     ...compute per-lane addresses like the CUDA kernel would...
//     cta.warp(0).ldg(addr, frag);          // coalescing is *measured*
//     mma_m8n8k4(cta.warp(0), a, b, acc);   // octet-level tensor core
//   });
//
// CTAs are round-robin assigned to model SMs and each SM's CTA list
// runs to completion in launch order; warps within a CTA run
// phase-by-phase — `Cta::sync()` marks barrier boundaries, and kernels
// are written in the phased style (loop over warps per phase) so
// producer/consumer shared-memory patterns remain correct under serial
// warp execution.
//
// With SimOptions{threads = N} the SM array is sharded across N host
// worker threads (SmContexts are private per SM, the L2 is slice-
// locked).  Functional results and per-SM counters are bit-exact for
// any N; the serial default additionally reproduces the historical
// global CTA order, making L2/DRAM counters bit-exact too.  Returns
// the merged hardware counters for the launch.  L1s are born cold at
// launch start (kernel-boundary semantics); L2 persists across
// launches.
#pragma once

#include <functional>
#include <utility>

#include "vsparse/gpusim/engine/engine.hpp"
#include "vsparse/gpusim/engine/warp_ops.hpp"

namespace vsparse::gpusim {

template <class Body>
KernelStats launch(Device& dev, const LaunchConfig& cfg, Body&& body,
                   const SimOptions& opts = {}) {
  // Type-erase the kernel body so the scheduling engine compiles once.
  // The reference capture is safe: run_launch joins every worker before
  // returning.
  const std::function<void(Cta&)> erased = [&body](Cta& cta) { body(cta); };
  return run_launch(dev, cfg, erased, opts);
}

}  // namespace vsparse::gpusim

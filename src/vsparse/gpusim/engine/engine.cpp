#include "vsparse/gpusim/engine/engine.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <sstream>
#include <vector>

#include "vsparse/gpusim/engine/scheduler.hpp"
#include "vsparse/gpusim/engine/sm_context.hpp"
#include "vsparse/gpusim/engine/thread_pool.hpp"
#include "vsparse/gpusim/faults.hpp"

namespace vsparse::gpusim {

namespace {

std::atomic<std::uint64_t> g_total_ctas{0};

/// Run one CTA on its home SM: fresh zeroed smem, fresh watchdog
/// budget, then the body.
void run_cta(SmContext& sm, const LaunchConfig& cfg, int cta_id,
             const std::function<void(Cta&)>& body) {
  sm.prepare_smem(cfg.smem_bytes);
  sm.watchdog_reset();
  Cta cta(&sm, &cfg, cta_id);
  body(cta);
  sm.stats().ctas_launched += 1;
  sm.stats().warps_launched += static_cast<std::uint64_t>(cfg.cta_threads / 32);
}

/// Rethrow a launch error.  A LaunchTimeoutError is augmented with a
/// per-SM progress dump (CTAs completed + ops issued by the in-flight
/// CTA on each SM) so a hang report shows *where* the launch stalled;
/// every other exception propagates unchanged.
[[noreturn]] void rethrow_launch_error(std::exception_ptr err,
                                       const std::vector<SmContext>& sms) {
  try {
    std::rethrow_exception(err);
  } catch (const LaunchTimeoutError& e) {
    std::ostringstream os;
    os << e.what() << "\nper-SM progress:";
    for (const SmContext& sm : sms) {
      os << " sm" << sm.sm_id() << "{ctas_done=" << sm.stats().ctas_launched
         << ",ops_in_cta=" << sm.watchdog_ops() << "}";
    }
    throw LaunchTimeoutError(os.str());
  }
}

}  // namespace

std::uint64_t total_simulated_ctas() {
  return g_total_ctas.load(std::memory_order_relaxed);
}

KernelStats run_launch(Device& dev, const LaunchConfig& cfg,
                       const std::function<void(Cta&)>& body,
                       const SimOptions& opts) {
  VSPARSE_CHECK(cfg.grid >= 1);
  VSPARSE_CHECK(cfg.cta_threads >= 32 && cfg.cta_threads <= 1024 &&
                cfg.cta_threads % 32 == 0);
  VSPARSE_CHECK(cfg.smem_bytes <= dev.config().max_smem_per_cta);
  VSPARSE_CHECK(cfg.profile.regs_per_thread <=
                dev.config().max_regs_per_thread);

  Scheduler sched(cfg.grid, dev.config().num_sms);

  int threads = opts.threads > 0 ? opts.threads : dev.sim_options().threads;
  if (threads < 1) threads = 1;
  if (threads > sched.num_active_sms()) threads = sched.num_active_sms();

  const std::uint64_t watchdog = opts.watchdog_cta_ops > 0
                                     ? opts.watchdog_cta_ops
                                     : dev.sim_options().watchdog_cta_ops;

  // Fresh per-SM contexts: cold L1s (= the kernel-boundary invalidation
  // the serial engine performed with flush_l1), empty counter blocks.
  std::vector<SmContext> sms;
  sms.reserve(static_cast<std::size_t>(sched.num_active_sms()));
  for (int sm = 0; sm < sched.num_active_sms(); ++sm) {
    sms.emplace_back(&dev, sm);
    sms.back().set_watchdog_limit(watchdog);
  }

  if (threads == 1) {
    // Serial path: CTAs run to completion in *global* launch order, so
    // the shared-L2 access sequence — and with it every L2/DRAM
    // counter — is bit-identical to the historical single-threaded
    // engine.
    try {
      for (int cta = 0; cta < cfg.grid; ++cta) {
        run_cta(sms[static_cast<std::size_t>(sched.sm_of(cta))], cfg, cta,
                body);
      }
    } catch (...) {
      rethrow_launch_error(std::current_exception(), sms);
    }
  } else {
    // Parallel path: workers claim whole SMs and run each SM's CTA
    // list in launch order.  Per-SM state sees the same sequence as
    // the serial path; only the interleaving of accesses to the
    // slice-locked L2 differs.
    std::mutex error_mu;
    std::exception_ptr first_error;
    ThreadPool::instance().run(threads, [&] {
      for (int sm; (sm = sched.next_sm()) >= 0;) {
        SmContext& ctx = sms[static_cast<std::size_t>(sm)];
        try {
          for (int cta = sched.first_cta(sm); cta < cfg.grid;
               cta += sched.cta_stride()) {
            run_cta(ctx, cfg, cta, body);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
    if (first_error) rethrow_launch_error(first_error, sms);
  }

  // Merge: uint64 sums are commutative and associative, so the merged
  // block is independent of which worker ran which SM.
  KernelStats total;
  for (const SmContext& sm : sms) total += sm.stats();
  g_total_ctas.fetch_add(total.ctas_launched, std::memory_order_relaxed);

  if (opts.per_sm_stats) {
    opts.per_sm_stats->assign(
        static_cast<std::size_t>(dev.config().num_sms), KernelStats{});
    for (const SmContext& sm : sms) {
      (*opts.per_sm_stats)[static_cast<std::size_t>(sm.sm_id())] = sm.stats();
    }
  }
  return total;
}

}  // namespace vsparse::gpusim

#include "vsparse/gpusim/engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <set>
#include <sstream>
#include <vector>

#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/engine/sm_context.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/sanitizer/shadow.hpp"
#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

namespace {

std::atomic<std::uint64_t> g_total_ctas{0};

}  // namespace

namespace engine_detail {

/// Merge the per-SM trace buffers into one LaunchTrace and hand it to
/// the sink.  Event order — launch begin, SM 0's stream, SM 1's, ...,
/// launch end — depends only on per-SM state, so the merged trace is
/// bit-identical for any host thread count.  On an aborted launch the
/// partial trace (everything emitted before the unwind, plus a
/// kLaunchAbort marker) is still delivered.
void finish_trace(Trace& sink, const LaunchConfig& cfg, int num_sms,
                  std::vector<SmTrace>& traces,
                  const std::vector<SmContext>& sms, bool aborted) {
  LaunchTrace lt;
  lt.kernel = cfg.profile.name;
  lt.grid = cfg.grid;
  lt.cta_threads = cfg.cta_threads;
  lt.smem_bytes = cfg.smem_bytes;
  lt.num_sms = num_sms;
  lt.aborted = aborted;
  for (const SmContext& sm : sms) lt.stats += sm.stats();

  std::size_t total_events = 2;
  for (const SmTrace& t : traces) {
    total_events += t.events().size();
    lt.duration = std::max(lt.duration, t.cycles());
  }
  lt.events.reserve(total_events + (aborted ? 1 : 0));

  TraceEvent begin;
  begin.kind = TraceEventKind::kKernelBegin;
  begin.a = static_cast<std::uint64_t>(cfg.grid);
  begin.b = static_cast<std::uint64_t>(cfg.cta_threads);
  lt.events.push_back(begin);
  for (const SmTrace& t : traces) {
    lt.events.insert(lt.events.end(), t.events().begin(), t.events().end());
  }
  if (aborted) {
    TraceEvent abort;
    abort.kind = TraceEventKind::kLaunchAbort;
    abort.cycles = lt.duration;
    lt.events.push_back(abort);
  }
  TraceEvent end;
  end.kind = TraceEventKind::kKernelEnd;
  end.cycles = lt.duration;
  lt.events.push_back(end);

  sink.add_launch(std::move(lt));
}

/// Merge the per-SM sanitizer collectors into one LaunchSanitizerRecord
/// and hand it to the sink.  SM-id merge order plus a cross-SM dedup
/// pass (first SM wins) keeps the record byte-identical for any host
/// thread count, mirroring finish_trace.  An aborted launch still
/// delivers everything detected before the unwind — an OOB lds is
/// reported *and* the launch throws.
void finish_sanitizer(Sanitizer& sink, const LaunchConfig& cfg,
                      const SanitizerOptions& opts,
                      const std::vector<SmSanitizer>& sans, bool aborted) {
  LaunchSanitizerRecord rec;
  rec.kernel = cfg.profile.name;
  rec.grid = cfg.grid;
  rec.cta_threads = cfg.cta_threads;
  rec.smem_bytes = cfg.smem_bytes;
  rec.aborted = aborted;
  std::set<SmSanitizer::Key> seen;
  for (const SmSanitizer& s : sans) {
    rec.suppressed += s.suppressed();
    rec.span_fastpath_ops += s.span_fastpath_ops();
    for (const SanitizerReport& r : s.reports()) {
      if (!seen.insert(SmSanitizer::key(r)).second) continue;
      if (rec.reports.size() >= opts.max_reports) {
        ++rec.suppressed;
        continue;
      }
      rec.reports.push_back(r);
    }
  }
  sink.add_launch(std::move(rec));
}

/// Rethrow a launch error.  A LaunchTimeoutError is augmented with a
/// per-SM progress dump (CTAs completed + ops issued by the in-flight
/// CTA on each SM) so a hang report shows *where* the launch stalled;
/// every other exception propagates unchanged.
[[noreturn]] void rethrow_launch_error(std::exception_ptr err,
                                       const std::vector<SmContext>& sms) {
  try {
    std::rethrow_exception(err);
  } catch (const LaunchTimeoutError& e) {
    std::ostringstream os;
    os << e.what() << "\nper-SM progress:";
    for (const SmContext& sm : sms) {
      os << " sm" << sm.sm_id() << "{ctas_done=" << sm.stats().ctas_launched
         << ",ops_in_cta=" << sm.watchdog_ops() << "}";
    }
    throw LaunchTimeoutError(os.str());
  }
}

void note_simulated_ctas(std::uint64_t ctas) {
  g_total_ctas.fetch_add(ctas, std::memory_order_relaxed);
}

void check_device_serviceable(const Device& dev) {
  switch (dev.device_fault()) {
    case DeviceFault::kNone:
      return;
    case DeviceFault::kWedged:
      // Deliberately a plain taxonomy error, not LaunchTimeoutError: no
      // CTA ever ran, so there is no per-SM progress to dump, and the
      // stable site string keeps serve reports byte-identical.
      throw Error(ErrorCode::kLaunchTimeout, "gpusim.device.wedged",
                  "device is wedged: launch timed out before any CTA was "
                  "scheduled");
    case DeviceFault::kDead:
      throw Error(ErrorCode::kDeviceLost, "gpusim.device.lost",
                  "device is lost: permanent fault-domain failure");
  }
}

}  // namespace engine_detail

std::uint64_t total_simulated_ctas() {
  return g_total_ctas.load(std::memory_order_relaxed);
}

KernelStats run_launch(Device& dev, const LaunchConfig& cfg,
                       const std::function<void(Cta&)>& body,
                       const SimOptions& opts) {
  // Compatibility form: instantiate the devirtualized engine once for
  // std::function bodies.  New code should go through launch() so the
  // body inlines into the CTA loop.
  return run_launch_direct(dev, cfg, body, opts);
}

}  // namespace vsparse::gpusim

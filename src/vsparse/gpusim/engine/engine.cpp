#include "vsparse/gpusim/engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "vsparse/gpusim/engine/scheduler.hpp"
#include "vsparse/gpusim/engine/sm_context.hpp"
#include "vsparse/gpusim/engine/thread_pool.hpp"
#include "vsparse/gpusim/faults.hpp"
#include "vsparse/gpusim/sanitizer/shadow.hpp"
#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

namespace {

std::atomic<std::uint64_t> g_total_ctas{0};

/// Run one CTA on its home SM: fresh zeroed smem, fresh watchdog
/// budget, then the body.
void run_cta(SmContext& sm, const LaunchConfig& cfg, int cta_id,
             const std::function<void(Cta&)>& body) {
  sm.prepare_smem(cfg.smem_bytes);
  sm.watchdog_reset();
  const std::uint64_t warps = static_cast<std::uint64_t>(cfg.cta_threads / 32);
  if (SmTrace* t = sm.trace()) {
    t->emit(TraceEventKind::kCtaBegin, cta_id, /*warp=*/-1, warps);
  }
  if (SmSanitizer* san = sm.sanitizer()) {
    san->on_cta_begin(cta_id, static_cast<int>(warps));
  }
  Cta cta(&sm, &cfg, cta_id);
  body(cta);
  // Only a CTA that ran to completion is checked for barrier-count
  // mismatches — an aborted body is not a synccheck finding.
  if (SmSanitizer* san = sm.sanitizer()) {
    san->on_cta_end();
  }
  sm.stats().ctas_launched += 1;
  sm.stats().warps_launched += warps;
  if (SmTrace* t = sm.trace()) {
    t->emit(TraceEventKind::kCtaEnd, cta_id, /*warp=*/-1);
  }
}

/// Merge the per-SM trace buffers into one LaunchTrace and hand it to
/// the sink.  Event order — launch begin, SM 0's stream, SM 1's, ...,
/// launch end — depends only on per-SM state, so the merged trace is
/// bit-identical for any host thread count.  On an aborted launch the
/// partial trace (everything emitted before the unwind, plus a
/// kLaunchAbort marker) is still delivered.
void finish_trace(Trace& sink, const LaunchConfig& cfg, int num_sms,
                  std::vector<SmTrace>& traces,
                  const std::vector<SmContext>& sms, bool aborted) {
  LaunchTrace lt;
  lt.kernel = cfg.profile.name;
  lt.grid = cfg.grid;
  lt.cta_threads = cfg.cta_threads;
  lt.smem_bytes = cfg.smem_bytes;
  lt.num_sms = num_sms;
  lt.aborted = aborted;
  for (const SmContext& sm : sms) lt.stats += sm.stats();

  std::size_t total_events = 2;
  for (const SmTrace& t : traces) {
    total_events += t.events().size();
    lt.duration = std::max(lt.duration, t.cycles());
  }
  lt.events.reserve(total_events + (aborted ? 1 : 0));

  TraceEvent begin;
  begin.kind = TraceEventKind::kKernelBegin;
  begin.a = static_cast<std::uint64_t>(cfg.grid);
  begin.b = static_cast<std::uint64_t>(cfg.cta_threads);
  lt.events.push_back(begin);
  for (const SmTrace& t : traces) {
    lt.events.insert(lt.events.end(), t.events().begin(), t.events().end());
  }
  if (aborted) {
    TraceEvent abort;
    abort.kind = TraceEventKind::kLaunchAbort;
    abort.cycles = lt.duration;
    lt.events.push_back(abort);
  }
  TraceEvent end;
  end.kind = TraceEventKind::kKernelEnd;
  end.cycles = lt.duration;
  lt.events.push_back(end);

  sink.add_launch(std::move(lt));
}

/// Merge the per-SM sanitizer collectors into one LaunchSanitizerRecord
/// and hand it to the sink.  SM-id merge order plus a cross-SM dedup
/// pass (first SM wins) keeps the record byte-identical for any host
/// thread count, mirroring finish_trace.  An aborted launch still
/// delivers everything detected before the unwind — an OOB lds is
/// reported *and* the launch throws.
void finish_sanitizer(Sanitizer& sink, const LaunchConfig& cfg,
                      const SanitizerOptions& opts,
                      const std::vector<SmSanitizer>& sans, bool aborted) {
  LaunchSanitizerRecord rec;
  rec.kernel = cfg.profile.name;
  rec.grid = cfg.grid;
  rec.cta_threads = cfg.cta_threads;
  rec.smem_bytes = cfg.smem_bytes;
  rec.aborted = aborted;
  std::set<SmSanitizer::Key> seen;
  for (const SmSanitizer& s : sans) {
    rec.suppressed += s.suppressed();
    for (const SanitizerReport& r : s.reports()) {
      if (!seen.insert(SmSanitizer::key(r)).second) continue;
      if (rec.reports.size() >= opts.max_reports) {
        ++rec.suppressed;
        continue;
      }
      rec.reports.push_back(r);
    }
  }
  sink.add_launch(std::move(rec));
}

/// Rethrow a launch error.  A LaunchTimeoutError is augmented with a
/// per-SM progress dump (CTAs completed + ops issued by the in-flight
/// CTA on each SM) so a hang report shows *where* the launch stalled;
/// every other exception propagates unchanged.
[[noreturn]] void rethrow_launch_error(std::exception_ptr err,
                                       const std::vector<SmContext>& sms) {
  try {
    std::rethrow_exception(err);
  } catch (const LaunchTimeoutError& e) {
    std::ostringstream os;
    os << e.what() << "\nper-SM progress:";
    for (const SmContext& sm : sms) {
      os << " sm" << sm.sm_id() << "{ctas_done=" << sm.stats().ctas_launched
         << ",ops_in_cta=" << sm.watchdog_ops() << "}";
    }
    throw LaunchTimeoutError(os.str());
  }
}

}  // namespace

std::uint64_t total_simulated_ctas() {
  return g_total_ctas.load(std::memory_order_relaxed);
}

KernelStats run_launch(Device& dev, const LaunchConfig& cfg,
                       const std::function<void(Cta&)>& body,
                       const SimOptions& opts) {
  VSPARSE_CHECK(cfg.grid >= 1);
  VSPARSE_CHECK(cfg.cta_threads >= 32 && cfg.cta_threads <= 1024 &&
                cfg.cta_threads % 32 == 0);
  VSPARSE_CHECK(cfg.smem_bytes <= dev.config().max_smem_per_cta);
  VSPARSE_CHECK(cfg.profile.regs_per_thread <=
                dev.config().max_regs_per_thread);

  Scheduler sched(cfg.grid, dev.config().num_sms);

  int threads = opts.threads > 0 ? opts.threads : dev.sim_options().threads;
  if (threads < 1) threads = 1;
  if (threads > sched.num_active_sms()) threads = sched.num_active_sms();

  const std::uint64_t watchdog = opts.watchdog_cta_ops > 0
                                     ? opts.watchdog_cta_ops
                                     : dev.sim_options().watchdog_cta_ops;

  // Tracing: the per-call TraceOptions win when they carry a sink,
  // otherwise the Device default applies (the `threads` inherit chain).
  const TraceOptions& tropts = opts.trace.sink != nullptr
                                   ? opts.trace
                                   : dev.sim_options().trace;

  // Sanitizing: same per-call-wins-else-device-default chain.
  const SanitizerOptions& sanopts = opts.sanitize.sink != nullptr
                                        ? opts.sanitize
                                        : dev.sim_options().sanitize;

  // per_sm_stats documents "the most recent launch": zero it up front
  // so a launch that unwinds (or one with a smaller active-SM set than
  // its predecessor) can never leave stale SM blocks behind.
  if (opts.per_sm_stats != nullptr) {
    opts.per_sm_stats->assign(static_cast<std::size_t>(dev.config().num_sms),
                              KernelStats{});
  }

  // Fresh per-SM contexts: cold L1s (= the kernel-boundary invalidation
  // the serial engine performed with flush_l1), empty counter blocks.
  std::vector<SmContext> sms;
  sms.reserve(static_cast<std::size_t>(sched.num_active_sms()));
  std::vector<SmTrace> traces;
  if (tropts.enabled()) {
    traces.reserve(static_cast<std::size_t>(sched.num_active_sms()));
  }
  // Sanitizer state: one collector per active SM plus one launch-wide
  // allocation snapshot (sorted, immutable — the boundscheck hot path
  // never takes the Device's alloc mutex).
  std::vector<SmSanitizer> sanitizers;
  std::vector<AllocRecord> alloc_snapshot;
  if (sanopts.enabled()) {
    alloc_snapshot = dev.allocation_snapshot();
    sanitizers.reserve(static_cast<std::size_t>(sched.num_active_sms()));
  }
  for (int sm = 0; sm < sched.num_active_sms(); ++sm) {
    sms.emplace_back(&dev, sm);
    sms.back().set_watchdog_limit(watchdog);
    if (tropts.enabled()) {
      traces.emplace_back(sm, tropts);
      sms.back().set_trace(&traces.back());
    }
    if (sanopts.enabled()) {
      sanitizers.emplace_back(sm, sanopts, &alloc_snapshot, cfg.smem_bytes);
      if (tropts.enabled()) sanitizers.back().set_trace(&traces.back());
      sms.back().set_sanitizer(&sanitizers.back());
    }
  }

  if (threads == 1) {
    // Serial path: CTAs run to completion in *global* launch order, so
    // the shared-L2 access sequence — and with it every L2/DRAM
    // counter — is bit-identical to the historical single-threaded
    // engine.
    try {
      for (int cta = 0; cta < cfg.grid; ++cta) {
        run_cta(sms[static_cast<std::size_t>(sched.sm_of(cta))], cfg, cta,
                body);
      }
    } catch (...) {
      if (tropts.enabled()) {
        finish_trace(*tropts.sink, cfg, dev.config().num_sms, traces, sms,
                     /*aborted=*/true);
      }
      if (sanopts.enabled()) {
        finish_sanitizer(*sanopts.sink, cfg, sanopts, sanitizers,
                         /*aborted=*/true);
      }
      rethrow_launch_error(std::current_exception(), sms);
    }
  } else {
    // Parallel path: workers claim whole SMs and run each SM's CTA
    // list in launch order.  Per-SM state sees the same sequence as
    // the serial path; only the interleaving of accesses to the
    // slice-locked L2 differs.
    std::mutex error_mu;
    std::exception_ptr first_error;
    ThreadPool::instance().run(threads, [&] {
      for (int sm; (sm = sched.next_sm()) >= 0;) {
        SmContext& ctx = sms[static_cast<std::size_t>(sm)];
        try {
          for (int cta = sched.first_cta(sm); cta < cfg.grid;
               cta += sched.cta_stride()) {
            run_cta(ctx, cfg, cta, body);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
    if (first_error) {
      if (tropts.enabled()) {
        finish_trace(*tropts.sink, cfg, dev.config().num_sms, traces, sms,
                     /*aborted=*/true);
      }
      if (sanopts.enabled()) {
        finish_sanitizer(*sanopts.sink, cfg, sanopts, sanitizers,
                         /*aborted=*/true);
      }
      rethrow_launch_error(first_error, sms);
    }
  }

  // Merge: uint64 sums are commutative and associative, so the merged
  // block is independent of which worker ran which SM.
  KernelStats total;
  for (const SmContext& sm : sms) total += sm.stats();
  g_total_ctas.fetch_add(total.ctas_launched, std::memory_order_relaxed);

  if (tropts.enabled()) {
    finish_trace(*tropts.sink, cfg, dev.config().num_sms, traces, sms,
                 /*aborted=*/false);
  }
  if (sanopts.enabled()) {
    finish_sanitizer(*sanopts.sink, cfg, sanopts, sanitizers,
                     /*aborted=*/false);
  }

  if (opts.per_sm_stats) {
    for (const SmContext& sm : sms) {
      (*opts.per_sm_stats)[static_cast<std::size_t>(sm.sm_id())] = sm.stats();
    }
  }
  return total;
}

}  // namespace vsparse::gpusim

// Static launch description: grid/CTA shape plus the compile-time
// kernel profile feeding the cost model.
#pragma once

#include <cstddef>
#include <string>

namespace vsparse::gpusim {

/// Static (compile-time) properties of a kernel, the inputs to the
/// occupancy and instruction-cache terms of the cost model.  Kernels
/// compute these from their tiling parameters with documented formulas
/// calibrated against the SASS statistics the paper reports (§7.2.2:
/// FPU baseline 3776/6968 SASS lines vs 384/416 for the octet kernel).
struct KernelProfile {
  std::string name = "kernel";
  int regs_per_thread = 32;
  int static_instrs = 256;  ///< estimated SASS program size (instructions)
  /// Multiplier on instruction-cache pressure: >1 for kernels with
  /// irregular control flow that re-fetches the overflowed program body
  /// every iteration (the Blocked-ELL library kernel of §3.2).
  double icache_pressure = 1.0;
  /// Multiplier on fixed-latency dependency stalls ("Wait"); the §5.4
  /// batched-loads-then-batched-MMAs trick lowers it below 1.
  double ilp_factor = 1.0;
  /// Memory-level parallelism: fraction of peak cache/DRAM bandwidth a
  /// warp's outstanding loads can sustain.  Serialized load-use chains
  /// (the compiler register-reuse problem §5.4 fixes) push it below 1.
  double mlp_factor = 1.0;
};

/// Grid/CTA shape of a launch.
struct LaunchConfig {
  int grid = 1;               ///< number of CTAs (1-D; kernels derive 2-D)
  int cta_threads = 32;       ///< multiple of 32, <= 1024
  std::size_t smem_bytes = 0; ///< static shared memory per CTA
  KernelProfile profile;
};

}  // namespace vsparse::gpusim

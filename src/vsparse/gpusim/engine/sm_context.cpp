#include "vsparse/gpusim/engine/sm_context.hpp"

#include <cstring>
#include <sstream>

#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

SmContext::SmContext(Device* dev, int sm_id)
    : dev_(dev),
      sm_id_(sm_id),
      l1_(dev->config().l1_bytes, dev->config().line_bytes,
          dev->config().sector_bytes, dev->config().l1_ways) {
  faults_.plan = dev->fault_plan();
  faults_.sm_id = sm_id;
}

void SmContext::throw_watchdog() const {
  if (trace_ != nullptr) {
    trace_->emit(TraceEventKind::kWatchdog, /*cta=*/-1, /*warp=*/-1,
                 watchdog_limit_, watchdog_ops_);
  }
  std::ostringstream os;
  os << "LaunchTimeoutError: CTA on sm " << sm_id_ << " exceeded the op budget"
     << " (" << watchdog_ops_ << " ops issued, limit " << watchdog_limit_
     << ") — malformed input driving an unbounded kernel loop?";
  throw LaunchTimeoutError(os.str());
}

std::byte* SmContext::prepare_smem(std::size_t bytes) {
  if (smem_.size() < bytes) smem_.resize(bytes);
  if (bytes != 0) std::memset(smem_.data(), 0, bytes);
  return smem_.data();
}

}  // namespace vsparse::gpusim

// CTA -> SM assignment and SM -> worker distribution.
//
// The assignment is the same round-robin the serial engine always
// used: CTA c runs on SM (c % num_sms), and one SM's CTAs run to
// completion in increasing launch order.  That per-SM order is the
// determinism contract: an SM's L1, shared-memory arena, and counter
// block see the identical access sequence regardless of how many host
// threads execute the SM array, so functional results and per-SM
// counters are bit-exact for any thread count.
//
// Workers claim whole SMs from an atomic cursor (dynamic load
// balancing across imbalanced SMs); claiming order never affects
// which CTAs an SM runs or their order, only which worker runs them.
#pragma once

#include <atomic>

#include "vsparse/common/macros.hpp"

namespace vsparse::gpusim {

class Scheduler {
 public:
  Scheduler(int grid, int num_sms) : grid_(grid), num_sms_(num_sms) {
    VSPARSE_DCHECK(grid >= 1 && num_sms >= 1);
  }

  int grid() const { return grid_; }
  int num_sms() const { return num_sms_; }

  /// Round-robin home of a CTA — exactly the historical assignment.
  int sm_of(int cta_id) const { return cta_id % num_sms_; }

  /// SMs that receive at least one CTA under round-robin.
  int num_active_sms() const { return grid_ < num_sms_ ? grid_ : num_sms_; }

  /// First CTA of an SM's list; subsequent CTAs follow at cta_stride().
  int first_cta(int sm) const { return sm; }
  int cta_stride() const { return num_sms_; }

  /// Claim the next unexecuted SM (workers call this in a loop until
  /// it returns -1).  Thread-safe; each active SM is handed out once.
  int next_sm() {
    const int sm = cursor_.fetch_add(1, std::memory_order_relaxed);
    return sm < num_active_sms() ? sm : -1;
  }

 private:
  int grid_;
  int num_sms_;
  std::atomic<int> cursor_{0};
};

}  // namespace vsparse::gpusim

// Structured per-launch trace events — the nsight-systems role for the
// simulator: what happened on which SM, attributed to CTA/warp, on a
// deterministic model-cycle timeline.
//
// Event model.  While a launch runs, each SM appends TraceEvents to a
// private SmTrace buffer — only ever touched by the host worker that
// executes that SM's CTA list, so the buffers are lock-free by
// construction.  Timestamps are the SM's *instruction clock*: the
// cumulative count of warp-level instructions issued on that SM since
// launch start.  Per-SM instruction sequences are bit-reproducible for
// any host thread count (the engine's sharding contract), so the clock
// — and with it the whole merged trace — is deterministic for any
// `threads = N`.
//
// At launch end the engine merges the per-SM buffers in SM-id order
// into one LaunchTrace (launch-scope kKernelBegin/kKernelEnd events
// bracket the SM streams) and hands it to the Trace sink.  Exporters
// (trace/export.hpp) turn a sink into Perfetto/chrome-trace JSON (one
// track per SM) and a machine-readable metrics.json.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "vsparse/gpusim/stats.hpp"
#include "vsparse/gpusim/trace/options.hpp"

namespace vsparse::gpusim {

enum class TraceEventKind : std::uint8_t {
  kKernelBegin = 0,  ///< launch scope; a = grid, b = cta_threads
  kKernelEnd,        ///< launch scope; cycles = max per-SM clock
  kCtaBegin,         ///< CTA scheduled onto its SM; a = warps
  kCtaEnd,           ///< CTA retired
  kBarrier,          ///< __syncthreads(); a = warps synchronized
  kWarpOp,           ///< sampled warp op; a = Op, b = ops in the batch
  kFaultInjected,    ///< a = FaultSite, b = address / offset / index
  kFaultMasked,      ///< ECC-corrected single-bit upset
  kFaultDetected,    ///< ECC double-bit detection (launch unwinds)
  kWatchdog,         ///< per-CTA op budget exceeded; a = budget
  kLaunchAbort,      ///< launch unwound with an error other than the above
  kAbftVerify,       ///< host-side checksum pass; a = corrupted tiles
  kAbftRecompute,    ///< single-tile recovery launch; a = vec row, b = tile
  kServeRetry,       ///< supervisor re-runs a rung; a = rung, b = attempt
  kServeFallback,    ///< degradation-ladder hop; a = from rung, b = to rung
  kServeGiveUp,      ///< ladder exhausted; a = error code, b = attempts
  kSanitizer,        ///< sanitizer hazard; a = SanitizerTool, b = HazardKind
  kNumEventKinds
};

/// Stable lowercase mnemonic ("cta_begin", "barrier", ...).
const char* trace_event_name(TraceEventKind kind);

struct TraceEvent {
  std::uint64_t cycles = 0;  ///< SM instruction clock (launch scope: see kind)
  std::uint64_t a = 0;       ///< kind-specific payload
  std::uint64_t b = 0;
  std::int32_t cta = -1;     ///< -1 = not CTA-attributed
  std::int16_t sm = -1;      ///< -1 = launch scope
  std::int16_t warp = -1;    ///< -1 = not warp-attributed
  TraceEventKind kind = TraceEventKind::kKernelBegin;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Per-SM event buffer for one launch.  Owned by the engine, attached
/// to the SmContext, and appended to only by the worker thread running
/// that SM — no synchronization anywhere on the hot path.
class SmTrace {
 public:
  SmTrace(int sm_id, const TraceOptions& opts)
      : sm_id_(static_cast<std::int16_t>(sm_id)),
        barriers_(opts.barriers),
        stride_(opts.sample_ops),
        countdown_(opts.sample_ops) {}

  void emit(TraceEventKind kind, int cta, int warp, std::uint64_t a = 0,
            std::uint64_t b = 0) {
    events_.push_back(TraceEvent{cycles_, a, b, cta, sm_id_,
                                 static_cast<std::int16_t>(warp), kind});
  }

  /// Advance the SM instruction clock by one batch of `n` warp ops
  /// (every Warp::count lands here).  With a sampling stride armed,
  /// emits at most one kWarpOp event per batch when the countdown
  /// crosses zero.
  void on_ops(Op op, std::uint64_t n, int cta, int warp) {
    cycles_ += n;
    if (stride_ != 0) {
      if (n >= countdown_) {
        emit(TraceEventKind::kWarpOp, cta, warp,
             static_cast<std::uint64_t>(op), n);
        countdown_ = stride_;
      } else {
        countdown_ -= n;
      }
    }
  }

  /// __syncthreads(): advances the clock by the barrier's warp-level
  /// issue slots and (optionally) records the wait.
  void on_sync(int cta, int warps) {
    cycles_ += static_cast<std::uint64_t>(warps);
    if (barriers_) {
      emit(TraceEventKind::kBarrier, cta, -1,
           static_cast<std::uint64_t>(warps));
    }
  }

  int sm_id() const { return sm_id_; }
  std::uint64_t cycles() const { return cycles_; }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::int16_t sm_id_;
  bool barriers_;
  std::uint64_t stride_;
  std::uint64_t countdown_;
  std::uint64_t cycles_ = 0;
  std::vector<TraceEvent> events_;
};

/// One launch's merged trace: identity, shape, merged counters, and the
/// event stream ordered (launch-begin, SM 0 events, SM 1 events, ...,
/// launch-end) — a deterministic order for any host thread count.
struct LaunchTrace {
  std::string kernel;             ///< LaunchConfig::profile.name
  int grid = 0;
  int cta_threads = 0;
  std::size_t smem_bytes = 0;
  int num_sms = 0;                ///< device SM count (tracks in the export)
  bool aborted = false;           ///< launch unwound with an error
  std::uint64_t duration = 0;     ///< max final per-SM instruction clock
  KernelStats stats;              ///< merged counters (partial if aborted)
  std::vector<TraceEvent> events;
};

/// Trace sink: collects LaunchTraces for the lifetime of a session
/// (typically one bench run).  add_launch/annotate are mutex-guarded so
/// concurrent devices can share one sink; reads are intended for after
/// the runs complete.
class Trace {
 public:
  void add_launch(LaunchTrace&& launch);

  /// Append a host-side launch-scope event (ABFT verify/recompute) to
  /// the most recently added launch; no-op when empty.
  void annotate(TraceEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

  const std::vector<LaunchTrace>& launches() const { return launches_; }
  std::size_t num_events() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<LaunchTrace> launches_;
};

}  // namespace vsparse::gpusim

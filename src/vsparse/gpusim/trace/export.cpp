#include "vsparse/gpusim/trace/export.hpp"

#include <array>
#include <cstdio>
#include <sstream>

#include "vsparse/gpusim/sanitizer/report.hpp"
#include "vsparse/gpusim/stats.hpp"
#include "vsparse/gpusim/trace/counters.hpp"
#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

/// One chrome-trace event line.  `first` tracks the comma placement.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  std::ostream& begin() {
    os_ << (first_ ? "\n  " : ",\n  ");
    first_ = false;
    return os_;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void write_instant_args(std::ostream& os, const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kBarrier:
      os << "{\"cta\":" << ev.cta << ",\"warps\":" << ev.a << '}';
      return;
    case TraceEventKind::kWarpOp:
      os << "{\"cta\":" << ev.cta << ",\"warp\":" << ev.warp << ",\"op\":\""
         << op_name(static_cast<Op>(ev.a)) << "\",\"ops\":" << ev.b << '}';
      return;
    case TraceEventKind::kFaultInjected:
    case TraceEventKind::kFaultMasked:
    case TraceEventKind::kFaultDetected:
      os << "{\"site\":" << ev.a << ",\"addr\":" << ev.b << '}';
      return;
    case TraceEventKind::kWatchdog:
      os << "{\"cta\":" << ev.cta << ",\"budget\":" << ev.a << '}';
      return;
    case TraceEventKind::kAbftVerify:
      os << "{\"corrupted_tiles\":" << ev.a << '}';
      return;
    case TraceEventKind::kAbftRecompute:
      os << "{\"vec_row\":" << ev.a << ",\"tile\":" << ev.b << '}';
      return;
    case TraceEventKind::kServeRetry:
      os << "{\"rung\":" << ev.a << ",\"attempt\":" << ev.b << '}';
      return;
    case TraceEventKind::kServeFallback:
      os << "{\"from_rung\":" << ev.a << ",\"to_rung\":" << ev.b << '}';
      return;
    case TraceEventKind::kServeGiveUp:
      os << "{\"error_code\":" << ev.a << ",\"attempts\":" << ev.b << '}';
      return;
    case TraceEventKind::kSanitizer:
      os << "{\"cta\":" << ev.cta << ",\"warp\":" << ev.warp
         << ",\"tool\":\""
         << sanitizer_tool_name(static_cast<SanitizerTool>(ev.a))
         << "\",\"kind\":\""
         << hazard_kind_name(static_cast<HazardKind>(ev.b)) << "\"}";
      return;
    default:
      os << "{\"a\":" << ev.a << ",\"b\":" << ev.b << '}';
      return;
  }
}

}  // namespace

std::string perfetto_json(const Trace& trace) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  EventWriter w(os);

  int pid = 0;
  for (const LaunchTrace& launch : trace.launches()) {
    const int launch_tid = launch.num_sms;  // host/launch-scope track

    w.begin() << "{\"ph\":\"M\",\"pid\":" << pid
              << ",\"name\":\"process_name\",\"args\":{\"name\":\"launch "
              << pid << ": ";
    json_escape(os, launch.kernel);
    os << "\"}}";
    w.begin() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << launch_tid
              << ",\"name\":\"thread_name\",\"args\":{\"name\":\"launch\"}}";
    for (int sm = 0; sm < launch.num_sms; ++sm) {
      w.begin() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << sm
                << ",\"name\":\"thread_name\",\"args\":{\"name\":\"SM " << sm
                << "\"}}";
    }

    // The kernel itself: one complete span on the launch track.
    w.begin() << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << launch_tid
              << ",\"ts\":0,\"dur\":" << launch.duration << ",\"name\":\"";
    json_escape(os, launch.kernel);
    os << "\",\"args\":{\"grid\":" << launch.grid
       << ",\"cta_threads\":" << launch.cta_threads
       << ",\"smem_bytes\":" << launch.smem_bytes
       << ",\"aborted\":" << (launch.aborted ? "true" : "false") << "}}";

    for (const TraceEvent& ev : launch.events) {
      const int tid = ev.sm >= 0 ? ev.sm : launch_tid;
      switch (ev.kind) {
        case TraceEventKind::kKernelBegin:
        case TraceEventKind::kKernelEnd:
          // Folded into the "X" span above.
          break;
        case TraceEventKind::kCtaBegin:
          w.begin() << "{\"ph\":\"B\",\"pid\":" << pid << ",\"tid\":" << tid
                    << ",\"ts\":" << ev.cycles << ",\"name\":\"cta " << ev.cta
                    << "\",\"args\":{\"warps\":" << ev.a << "}}";
          break;
        case TraceEventKind::kCtaEnd:
          w.begin() << "{\"ph\":\"E\",\"pid\":" << pid << ",\"tid\":" << tid
                    << ",\"ts\":" << ev.cycles << '}';
          break;
        default:
          w.begin() << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
                    << ",\"ts\":" << ev.cycles << ",\"s\":\"t\",\"name\":\""
                    << trace_event_name(ev.kind) << "\",\"args\":";
          write_instant_args(os, ev);
          os << '}';
          break;
      }
    }
    ++pid;
  }
  os << "\n]}\n";
  return os.str();
}

std::string metrics_json(const Trace& trace) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"vsparse-metrics-v1\",\n  \"num_launches\": "
     << trace.launches().size() << ",\n  \"launches\": [";
  bool first_launch = true;
  int index = 0;
  for (const LaunchTrace& launch : trace.launches()) {
    os << (first_launch ? "\n" : ",\n");
    first_launch = false;
    os << "    {\n      \"index\": " << index++ << ",\n      \"kernel\": \"";
    json_escape(os, launch.kernel);
    os << "\",\n      \"grid\": " << launch.grid
       << ",\n      \"cta_threads\": " << launch.cta_threads
       << ",\n      \"smem_bytes\": " << launch.smem_bytes
       << ",\n      \"num_sms\": " << launch.num_sms
       << ",\n      \"aborted\": " << (launch.aborted ? "true" : "false")
       << ",\n      \"duration_cycles\": " << launch.duration;

    std::array<std::size_t, static_cast<int>(TraceEventKind::kNumEventKinds)>
        by_kind{};
    for (const TraceEvent& ev : launch.events) {
      ++by_kind[static_cast<int>(ev.kind)];
    }
    os << ",\n      \"events\": {\n        \"total\": "
       << launch.events.size() << ",\n        \"by_kind\": {";
    bool first_kind = true;
    for (int k = 0; k < static_cast<int>(TraceEventKind::kNumEventKinds);
         ++k) {
      if (by_kind[static_cast<std::size_t>(k)] == 0) continue;
      os << (first_kind ? "" : ", ") << '"'
         << trace_event_name(static_cast<TraceEventKind>(k))
         << "\": " << by_kind[static_cast<std::size_t>(k)];
      first_kind = false;
    }
    os << "}\n      },\n      \"counters\":\n";
    counters_json(os, launch.stats, 6);
    os << "\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

bool write_perfetto_json(const Trace& trace, const std::string& path) {
  return write_file(path, perfetto_json(trace));
}

bool write_metrics_json(const Trace& trace, const std::string& path) {
  return write_file(path, metrics_json(trace));
}

bool write_trace_files(const Trace& trace, const std::string& prefix) {
  return write_perfetto_json(trace, prefix + ".perfetto.json") &&
         write_metrics_json(trace, prefix + ".metrics.json");
}

}  // namespace vsparse::gpusim

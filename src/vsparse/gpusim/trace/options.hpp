// Per-launch tracing knobs — the observability analogue of SimOptions'
// `threads`.  Leaf header (only <cstdint>): included by SimOptions so
// every kernel entry point that already takes SimOptions carries the
// trace configuration with no signature change.
//
// Inherit chain (same as SimOptions::threads): a launch whose
// TraceOptions has no sink inherits the Device's configured default
// (Device::set_sim_options), which itself defaults to "disabled".
// With no sink anywhere the engine takes a null-pointer fast path —
// exactly the FaultPlan pattern — and the run is bit- and
// counter-identical to a build without the trace subsystem.
#pragma once

#include <cstdint>

namespace vsparse::gpusim {

class Trace;

struct TraceOptions {
  /// Destination for the launch traces.  nullptr = tracing disabled
  /// (the zero-overhead fast path).  The sink must outlive every
  /// launch that writes to it; one sink typically collects a whole
  /// bench run and is exported once at the end.
  Trace* sink = nullptr;

  /// Emit one sampled warp-op event per `sample_ops` warp instructions
  /// issued on an SM (0 = no per-op events).  Full fig17-sized runs
  /// issue billions of warp ops; sampling keeps the trace tractable
  /// while still showing the instruction mix over time.
  std::uint64_t sample_ops = 0;

  /// Emit a barrier event at every __syncthreads() (kBarrier).
  bool barriers = true;

  bool enabled() const { return sink != nullptr; }
};

}  // namespace vsparse::gpusim

// Trace exporters.
//
// * Perfetto / chrome-trace JSON: open in https://ui.perfetto.dev or
//   chrome://tracing.  One process per launch, one track (tid) per SM
//   plus a "launch" track for launch-scope events (kernel span, ABFT
//   verify/recompute, aborts).  Timestamps are model instruction
//   cycles written as microseconds, so track lengths compare
//   meaningfully within a launch.
// * metrics.json: machine-readable per-launch record — identity,
//   shape, event census, and every registry counter plus derived
//   metrics (schema "vsparse-metrics-v1").
//
// Both serializers are deterministic functions of the Trace contents:
// with the engine's per-SM determinism contract, the Perfetto string
// is byte-identical for any `threads = N` (it contains no L2/DRAM
// counters); metrics.json additionally embeds the four
// interleaving-sensitive counters, so it is byte-stable only at a
// fixed thread count.
#pragma once

#include <string>

namespace vsparse::gpusim {

class Trace;

std::string perfetto_json(const Trace& trace);
std::string metrics_json(const Trace& trace);

/// Write one export to `path`; false (with errno intact) on I/O error.
bool write_perfetto_json(const Trace& trace, const std::string& path);
bool write_metrics_json(const Trace& trace, const std::string& path);

/// Write `<prefix>.perfetto.json` and `<prefix>.metrics.json`
/// (the bench runner's `--trace=PREFIX` layout).
bool write_trace_files(const Trace& trace, const std::string& prefix);

}  // namespace vsparse::gpusim

#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kKernelBegin:
      return "kernel_begin";
    case TraceEventKind::kKernelEnd:
      return "kernel_end";
    case TraceEventKind::kCtaBegin:
      return "cta_begin";
    case TraceEventKind::kCtaEnd:
      return "cta_end";
    case TraceEventKind::kBarrier:
      return "barrier";
    case TraceEventKind::kWarpOp:
      return "warp_op";
    case TraceEventKind::kFaultInjected:
      return "fault_injected";
    case TraceEventKind::kFaultMasked:
      return "fault_masked";
    case TraceEventKind::kFaultDetected:
      return "fault_detected";
    case TraceEventKind::kWatchdog:
      return "watchdog";
    case TraceEventKind::kLaunchAbort:
      return "launch_abort";
    case TraceEventKind::kAbftVerify:
      return "abft_verify";
    case TraceEventKind::kAbftRecompute:
      return "abft_recompute";
    case TraceEventKind::kServeRetry:
      return "serve_retry";
    case TraceEventKind::kServeFallback:
      return "serve_fallback";
    case TraceEventKind::kServeGiveUp:
      return "serve_give_up";
    case TraceEventKind::kSanitizer:
      return "sanitizer";
    case TraceEventKind::kNumEventKinds:
      break;
  }
  return "?";
}

void Trace::add_launch(LaunchTrace&& launch) {
  std::lock_guard<std::mutex> lock(mu_);
  launches_.push_back(std::move(launch));
}

void Trace::annotate(TraceEventKind kind, std::uint64_t a, std::uint64_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (launches_.empty()) return;
  LaunchTrace& last = launches_.back();
  TraceEvent ev;
  ev.cycles = last.duration;  // host-side: pinned to end of launch
  ev.a = a;
  ev.b = b;
  ev.kind = kind;
  last.events.push_back(ev);
}

std::size_t Trace::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const LaunchTrace& l : launches_) n += l.events.size();
  return n;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  launches_.clear();
}

}  // namespace vsparse::gpusim

// Counter registry: the single definition site for every KernelStats
// counter.  Each entry carries the stable export key, a description,
// the unit, determinism class, and enough pretty-print metadata to
// reproduce KernelStats' historical text dump byte for byte — so
// merge, diff, equality, JSON export, and pretty-print are all
// *derived* from this table and a counter added here can never
// silently miss an exporter.
//
// Coverage is enforced structurally: KernelStats is exactly
// `kNumCounters` uint64 fields, and the static_assert below fails the
// build the moment a field is added to KernelStats without a matching
// registry row (or vice versa).  A unit test additionally checks that
// the 37 accessors hit 37 distinct fields (exactly-once, not just
// exactly-enough).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "vsparse/gpusim/stats.hpp"

namespace vsparse::gpusim {

/// Pretty-print groups, in output order.  Each group is one labelled
/// clause of the historical KernelStats dump; `prefix` is the literal
/// text that precedes the group header ("\n" = new line, "  " = same
/// line as the previous group).
enum class CounterGroup : std::int8_t {
  kHidden = -1,    ///< counted/merged/exported but absent from the text dump
  kInstructions,   ///< "instructions:" (zero-valued entries omitted)
  kLdgWidths,      ///< "ldg widths:"
  kGlobal,         ///< "global:" (+ derived sectors/req)
  kL1,             ///< "L1:"
  kL2,             ///< "  L2:" — same line as L1
  kDram,           ///< "  DRAM" — same line as L1/L2
  kSmem,           ///< "smem:"
  kLaunch,         ///< "launch:"
  kFaults,         ///< "faults:" — whole group omitted when all zero
  kNumGroups
};

struct CounterDef {
  const char* name;   ///< stable snake_case export key ("inst_hmma", "ldg16")
  const char* desc;   ///< one-line description
  const char* unit;   ///< "inst" | "requests" | "sectors" | "bytes" | ...
  CounterGroup group;
  const char* label;   ///< pretty-print label within the group ("HMMA", "rd")
  const char* suffix;  ///< printed right after the value ("B" for DRAM bytes)
  bool skip_zero;      ///< omit from pretty-print when the value is zero
  bool sm_local;       ///< false for the four counters the engine's
                       ///< determinism contract excludes at threads > 1
                       ///< (L2 hit/miss split, DRAM bytes)
  int op;              ///< >= 0: this counter is ops[op]
  std::uint64_t KernelStats::* member;  ///< used when op < 0
};

inline constexpr int kNumCounters = kNumOps + 24;  // 13 ops + 24 scalars = 37

// KernelStats must be a plain block of kNumCounters uint64 fields; if
// this fires, a field was added/removed without updating the registry.
static_assert(sizeof(KernelStats) ==
                  static_cast<std::size_t>(kNumCounters) *
                      sizeof(std::uint64_t),
              "KernelStats and the counter registry are out of sync: add "
              "the new field to counter_registry() in trace/counters.cpp");

/// The registry, in KernelStats declaration order.
const std::array<CounterDef, kNumCounters>& counter_registry();

/// Lookup by export key; nullptr if unknown.
const CounterDef* find_counter(std::string_view name);

std::uint64_t counter_value(const KernelStats& s, const CounterDef& def);
std::uint64_t& counter_ref(KernelStats& s, const CounterDef& def);

/// Derived metrics — computed from counters, never merged.  Exactly one
/// of {ival, fval} is non-null.
struct DerivedDef {
  const char* name;
  const char* desc;
  const char* unit;
  CounterGroup group;  ///< kHidden unless part of the historical dump
  const char* label;
  std::uint64_t (*ival)(const KernelStats&);
  double (*fval)(const KernelStats&);
};

inline constexpr int kNumDerived = 5;
const std::array<DerivedDef, kNumDerived>& derived_registry();

// ---- registry-driven operations (the implementations KernelStats'
// ---- own methods forward to) ------------------------------------------

/// dst[c] += src[c] for every counter.
void counters_accumulate(KernelStats& dst, const KernelStats& src);

/// Equality over all counters / over the sm_local subset only.
bool counters_equal(const KernelStats& a, const KernelStats& b);
bool counters_sm_local_equal(const KernelStats& a, const KernelStats& b);

/// after[c] - before[c] per counter (counters are monotonic within a
/// launch, so this is the standard begin/end profiling delta).
KernelStats counters_diff(const KernelStats& after, const KernelStats& before);

/// The historical KernelStats text dump, byte-identical to the
/// hand-written formatter this registry replaced.
void counters_print(std::ostream& os, const KernelStats& s);

/// Flat JSON object: every registry counter (stable keys, declaration
/// order) followed by a "derived" sub-object.  `indent` spaces prefix
/// each line; emits no trailing newline.
void counters_json(std::ostream& os, const KernelStats& s, int indent = 0);

}  // namespace vsparse::gpusim

#include "vsparse/gpusim/trace/counters.hpp"

#include <cstdio>
#include <ostream>

namespace vsparse::gpusim {

namespace {

using CG = CounterGroup;
using KS = KernelStats;

constexpr CounterDef op_def(const char* name, int op, const char* label,
                            const char* desc) {
  return CounterDef{name, desc,  "inst", CG::kInstructions, label,
                    "",   true,  true,   op,                nullptr};
}

constexpr CounterDef scalar_def(const char* name, std::uint64_t KS::* member,
                                CG group, const char* label, const char* unit,
                                const char* desc, bool sm_local = true,
                                const char* suffix = "") {
  return CounterDef{name,   desc,  unit,     group, label,
                    suffix, false, sm_local, -1,    member};
}

constexpr std::array<CounterDef, kNumCounters> kRegistry = {{
    // --- executed instructions (warp level) ---------------------------
    op_def("inst_hmma", 0, "HMMA", "HMMA.884 tensor-core steps"),
    op_def("inst_hfma", 1, "HFMA", "HFMA2/HMUL fp16 FPU math"),
    op_def("inst_ffma", 2, "FFMA", "FFMA/FADD/FMUL fp32 FPU math"),
    op_def("inst_imad", 3, "IMAD", "integer multiply-add (addresses)"),
    op_def("inst_iadd3", 4, "IADD3", "3-input integer adds"),
    op_def("inst_ldg", 5, "LDG", "global loads (any width)"),
    op_def("inst_stg", 6, "STG", "global stores"),
    op_def("inst_lds", 7, "LDS", "shared-memory loads"),
    op_def("inst_sts", 8, "STS", "shared-memory stores"),
    op_def("inst_shfl", 9, "SHFL", "warp shuffles"),
    op_def("inst_bar", 10, "BAR", "barriers / memory fences"),
    op_def("inst_cvt", 11, "CVT", "precision conversions"),
    op_def("inst_misc", 12, "MISC", "predicates, branches, moves"),
    // --- global-load width histogram -----------------------------------
    scalar_def("ldg16", &KS::ldg16, CG::kLdgWidths, "16b", "inst",
               "16-bit per-thread global loads"),
    scalar_def("ldg32", &KS::ldg32, CG::kLdgWidths, "32b", "inst",
               "LDG.32 global loads"),
    scalar_def("ldg64", &KS::ldg64, CG::kLdgWidths, "64b", "inst",
               "LDG.64 global loads"),
    scalar_def("ldg128", &KS::ldg128, CG::kLdgWidths, "128b", "inst",
               "LDG.128 global loads"),
    // --- global memory traffic ------------------------------------------
    scalar_def("global_load_requests", &KS::global_load_requests, CG::kGlobal,
               "load_req", "requests", "warp-level LDG requests"),
    scalar_def("global_load_sectors", &KS::global_load_sectors, CG::kGlobal,
               "load_sectors", "sectors", "32 B sectors touched by loads"),
    scalar_def("global_store_requests", &KS::global_store_requests,
               CG::kGlobal, "store_req", "requests",
               "warp-level STG requests"),
    scalar_def("global_store_sectors", &KS::global_store_sectors, CG::kGlobal,
               "store_sectors", "sectors", "32 B sectors touched by stores"),
    scalar_def("l1_sector_hits", &KS::l1_sector_hits, CG::kL1, "hits",
               "sectors", "sectors served by L1"),
    scalar_def("l1_sector_misses", &KS::l1_sector_misses, CG::kL1, "misses",
               "sectors", "L1 missed sectors (Fig. 5)"),
    scalar_def("l2_sector_hits", &KS::l2_sector_hits, CG::kL2, "hits",
               "sectors", "sectors served by L2",
               /*sm_local=*/false),
    scalar_def("l2_sector_misses", &KS::l2_sector_misses, CG::kL2, "misses",
               "sectors", "L2 missed sectors",
               /*sm_local=*/false),
    scalar_def("dram_read_bytes", &KS::dram_read_bytes, CG::kDram, "rd",
               "bytes", "bytes read from DRAM",
               /*sm_local=*/false, "B"),
    scalar_def("dram_write_bytes", &KS::dram_write_bytes, CG::kDram, "wr",
               "bytes", "bytes written to DRAM",
               /*sm_local=*/false, "B"),
    // --- shared memory ---------------------------------------------------
    scalar_def("smem_load_requests", &KS::smem_load_requests, CG::kSmem,
               "ld_req", "requests", "warp-level LDS requests"),
    scalar_def("smem_store_requests", &KS::smem_store_requests, CG::kSmem,
               "st_req", "requests", "warp-level STS requests"),
    scalar_def("smem_load_bytes", &KS::smem_load_bytes, CG::kHidden, "",
               "bytes", "bytes loaded from shared memory"),
    scalar_def("smem_store_bytes", &KS::smem_store_bytes, CG::kHidden, "",
               "bytes", "bytes stored to shared memory"),
    scalar_def("smem_wavefronts", &KS::smem_wavefronts, CG::kSmem,
               "wavefronts", "wavefronts",
               "bank-conflict-expanded smem accesses"),
    // --- launch shape ------------------------------------------------------
    scalar_def("ctas_launched", &KS::ctas_launched, CG::kLaunch, "ctas",
               "ctas", "CTAs executed by the launch"),
    scalar_def("warps_launched", &KS::warps_launched, CG::kLaunch, "warps",
               "warps", "warps executed by the launch"),
    // --- fault injection ---------------------------------------------------
    scalar_def("faults_injected", &KS::faults_injected, CG::kFaults,
               "injected", "faults", "upsets applied to read data"),
    scalar_def("faults_masked", &KS::faults_masked, CG::kFaults, "masked",
               "faults", "ECC-corrected single-bit upsets"),
    scalar_def("faults_detected", &KS::faults_detected, CG::kFaults,
               "detected", "faults", "ECC double-bit detections"),
}};

std::uint64_t d_total_instructions(const KernelStats& s) {
  return s.total_instructions();
}
std::uint64_t d_math_instructions(const KernelStats& s) {
  return s.math_instructions();
}
std::uint64_t d_bytes_l2_to_l1(const KernelStats& s) {
  return s.bytes_l2_to_l1();
}
double d_sectors_per_request(const KernelStats& s) {
  return s.sectors_per_request();
}
double d_smem_to_global_load_ratio(const KernelStats& s) {
  return s.smem_to_global_load_ratio();
}

constexpr std::array<DerivedDef, kNumDerived> kDerived = {{
    {"total_instructions", "executed warp instructions, all classes", "inst",
     CG::kHidden, "", &d_total_instructions, nullptr},
    {"math_instructions", "HMMA + HFMA + FFMA (Fig. 5 right panel)", "inst",
     CG::kHidden, "", &d_math_instructions, nullptr},
    {"bytes_l2_to_l1", "L1 missed sectors * 32 B (Fig. 18)", "bytes",
     CG::kHidden, "", &d_bytes_l2_to_l1, nullptr},
    {"sectors_per_request", "avg sectors per global load (Tables 2-3)",
     "sectors/req", CG::kGlobal, "sectors/req", nullptr,
     &d_sectors_per_request},
    {"smem_to_global_load_ratio", "smem / global load requests (3.2)",
     "ratio", CG::kHidden, "", nullptr, &d_smem_to_global_load_ratio},
}};

/// Pretty-print layout per group: the literal text before the header
/// ("\n" = next line, "  " = same line) and the header itself.
struct GroupLayout {
  const char* prefix;
  const char* header;
  bool hide_when_all_zero;
};

constexpr GroupLayout kGroups[static_cast<int>(CG::kNumGroups)] = {
    {"", "instructions:", false},  // kInstructions
    {"\n", "ldg widths:", false},  // kLdgWidths
    {"\n", "global:", false},      // kGlobal
    {"\n", "L1:", false},          // kL1
    {"  ", "L2:", false},          // kL2
    {"  ", "DRAM", false},         // kDram
    {"\n", "smem:", false},        // kSmem
    {"\n", "launch:", false},      // kLaunch
    {"\n", "faults:", true},       // kFaults
};

void json_number(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

const std::array<CounterDef, kNumCounters>& counter_registry() {
  return kRegistry;
}

const CounterDef* find_counter(std::string_view name) {
  for (const CounterDef& def : kRegistry) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

std::uint64_t counter_value(const KernelStats& s, const CounterDef& def) {
  return def.op >= 0 ? s.ops[def.op] : s.*(def.member);
}

std::uint64_t& counter_ref(KernelStats& s, const CounterDef& def) {
  return def.op >= 0 ? s.ops[def.op] : s.*(def.member);
}

const std::array<DerivedDef, kNumDerived>& derived_registry() {
  return kDerived;
}

void counters_accumulate(KernelStats& dst, const KernelStats& src) {
  for (const CounterDef& def : kRegistry) {
    counter_ref(dst, def) += counter_value(src, def);
  }
}

bool counters_equal(const KernelStats& a, const KernelStats& b) {
  for (const CounterDef& def : kRegistry) {
    if (counter_value(a, def) != counter_value(b, def)) return false;
  }
  return true;
}

bool counters_sm_local_equal(const KernelStats& a, const KernelStats& b) {
  for (const CounterDef& def : kRegistry) {
    if (!def.sm_local) continue;
    if (counter_value(a, def) != counter_value(b, def)) return false;
  }
  return true;
}

KernelStats counters_diff(const KernelStats& after,
                          const KernelStats& before) {
  KernelStats out;
  for (const CounterDef& def : kRegistry) {
    counter_ref(out, def) = counter_value(after, def) -
                            counter_value(before, def);
  }
  return out;
}

void counters_print(std::ostream& os, const KernelStats& s) {
  for (int g = 0; g < static_cast<int>(CG::kNumGroups); ++g) {
    const GroupLayout& layout = kGroups[g];
    const CG group = static_cast<CG>(g);
    if (layout.hide_when_all_zero) {
      bool any = false;
      for (const CounterDef& def : kRegistry) {
        if (def.group == group && counter_value(s, def) != 0) any = true;
      }
      if (!any) continue;
    }
    os << layout.prefix << layout.header;
    for (const CounterDef& def : kRegistry) {
      if (def.group != group) continue;
      const std::uint64_t v = counter_value(s, def);
      if (def.skip_zero && v == 0) continue;
      os << ' ' << def.label << '=' << v << def.suffix;
    }
    for (const DerivedDef& def : kDerived) {
      if (def.group != group) continue;
      os << ' ' << def.label << '=';
      if (def.ival != nullptr) {
        os << def.ival(s);
      } else {
        os << def.fval(s);
      }
    }
  }
}

void counters_json(std::ostream& os, const KernelStats& s, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "{\n";
  for (const CounterDef& def : kRegistry) {
    os << pad << "  \"" << def.name << "\": " << counter_value(s, def)
       << ",\n";
  }
  os << pad << "  \"derived\": {";
  bool first = true;
  for (const DerivedDef& def : kDerived) {
    os << (first ? "\n" : ",\n") << pad << "    \"" << def.name << "\": ";
    if (def.ival != nullptr) {
      os << def.ival(s);
    } else {
      json_number(os, def.fval(s));
    }
    first = false;
  }
  os << '\n' << pad << "  }\n" << pad << '}';
}

}  // namespace vsparse::gpusim

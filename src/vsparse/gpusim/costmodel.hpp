// Analytic performance model: hardware counters -> model cycles.
//
// The paper reports wall-clock speedups measured on a V100; with no GPU
// available, we substitute a roofline-style model evaluated over the
// counters the functional simulator records.  All reproduced results
// are *ratios* of model cycles between kernels run on the same model,
// so the model's job is to encode the mechanisms the paper's analysis
// attributes performance to:
//
//   * compute throughput: TCU (HMMA) vs FPU (FFMA/HFMA) pipes
//     (guideline III — merging FMA chains into HMMA),
//   * memory bandwidth at each level: LSU request rate, shared-memory
//     bandwidth (incl. bank-conflict wavefronts), L1 sector return
//     bandwidth, L2 and DRAM byte bandwidth (guidelines IV & V — the
//     sector counts already reflect coalescing and vector-load width),
//   * occupancy / thread-level parallelism (guideline II): low active
//     warp counts expose latency that cannot be hidden,
//   * issue-efficiency stalls (guideline I): "No Instruction" from L0
//     i-cache overflow, "Wait" from fixed-latency dependency chains on
//     address arithmetic, "Short Scoreboard" from shared-memory
//     load-to-use dependencies.
//
// The three stall terms are also exported directly; Tables 1-3 of the
// paper are reproduced from them.  Calibration constants live in
// CostParams with documented paper anchor points.
#pragma once

#include "vsparse/gpusim/config.hpp"
#include "vsparse/gpusim/engine/launch_config.hpp"
#include "vsparse/gpusim/stats.hpp"

#include <string>

namespace vsparse::gpusim {

/// Calibration constants for the stall/latency terms.  Anchors: Table 1
/// (Blocked-ELL block=4: No-Instr 42.6%, Wait 21.0%, Short-Scoreboard
/// 11.9%), Table 2 (octet SpMM V=4: 1.1% / 4.7% / 4.5%; FPU V=4:
/// 11.0% / 11.6% / 2.6%) and Table 3.
struct CostParams {
  /// "No Instruction" = coeff * (program/capacity)^exp * icache_pressure
  /// when the program overflows the L0.  Fitted to the paper's anchor
  /// points: 3776 SASS lines -> 11.0%, 6968 -> 52.2% (Table 2), with
  /// Blocked-ELL's 4600 -> 42.6% absorbed into its icache_pressure.
  double icache_stall_coeff = 0.0019;
  double icache_stall_exp = 2.54;
  double wait_stall_scale = 0.75;     ///< x integer-op share of issue slots
  double wait_stall_base = 0.02;      ///< pipeline bubbles present in any kernel
  /// "Short Scoreboard" = scale * smem-load share * ilp_factor (load
  /// batching hides shared-memory latency too).
  double smem_stall_scale = 1.4;
  double max_total_stall = 0.85;      ///< clamp: issue never fully starves
  double latency_hiding_warps = 8.0;  ///< resident warps/SM to hide latency
};

/// Occupancy and per-resource cycle breakdown for one launch.
struct CostEstimate {
  double cycles = 0;  ///< headline: estimated kernel duration (model cycles)

  // occupancy
  int ctas_per_sm = 0;
  int active_warps_per_sm = 0;
  double waves = 0;

  // roofline terms (cycles on the busiest resource)
  double issue_cycles = 0;
  double tcu_cycles = 0;
  double fma_cycles = 0;
  double alu_cycles = 0;
  double lsu_cycles = 0;
  double smem_cycles = 0;
  double l1_cycles = 0;
  double l2_cycles = 0;
  double dram_cycles = 0;

  /// Which of the terms above bound the kernel.
  std::string bound_by;

  // stall fractions (of issue slots) — the Tables 1-3 columns
  double stall_no_instruction = 0;
  double stall_wait = 0;
  double stall_short_scoreboard = 0;

  /// Utilization of the busiest *compute* pipe (Fig. 5 middle panel).
  double max_compute_pipe_utilization = 0;
};

/// Evaluate the model for one launch.
CostEstimate estimate_cost(const DeviceConfig& dev, const LaunchConfig& cfg,
                           const KernelStats& stats,
                           const CostParams& params = {});

/// Occupancy helper (also unit-tested standalone): CTAs resident per SM
/// given the launch shape and register/smem budgets.
int ctas_per_sm_limit(const DeviceConfig& dev, const LaunchConfig& cfg);

}  // namespace vsparse::gpusim

// Deterministic fault injection, the ECC model, and the structured
// errors of the fault-tolerance subsystem.
//
// A real V100 cannot flip a DRAM bit on demand; the simulator can, and
// deterministically.  A FaultPlan describes *which* upsets happen —
// targeted single/multi-bit flips at specific device addresses plus
// rate-based random upsets per injection site — and is attached to a
// Device with Device::set_fault_plan().  The engine's warp ops consult
// the plan behind a null-pointer fast path, so with no plan attached
// the simulation is bit- and counter-identical to a build without this
// subsystem.
//
// Injection sites (FaultSite):
//   * kDramRead — data returned by a global load (LDG), modeling an
//     upset in the DRAM cell / on the return path.
//   * kL2Line  — same hook point, modeling an upset in the L2 line the
//     load was served from.  Kept as a separate site so campaigns can
//     weight DRAM and SRAM rates independently.
//   * kSmemRead — data returned by a shared-memory load (LDS).
//   * kMmaFrag  — an operand register fragment of a tensor-core MMA.
//
// ECC model: when FaultPlan::ecc is set, DRAM and L2 sites get SEC-DED
// semantics — a single-bit upset is corrected in flight (counted as
// masked, data untouched) and a double-bit upset is *detected*: the
// load raises EccError instead of silently corrupting data.  Shared
// memory and register fragments are not ECC-protected in this model.
//
// Determinism contract (see DESIGN.md "Fault model"): every injection
// decision is a pure function of (plan seed, site, sm_id, that SM's
// per-site access counter) or, for targets, of the per-(target, SM)
// armed state.  Per-SM access sequences are bit-reproducible for any
// host thread count (the engine's sharding contract), so the same seed
// and plan produce the identical fault set at any --threads=N.
//
// Targeted faults are transient upsets: a target fires at most once
// per SM (per arm), and the armed state persists across launches so an
// ABFT recompute of a corrupted tile observes clean data — exactly the
// transient-upset scenario ABFT recovers from.  A `sticky` target
// models a hard (stuck-at-toggle) fault instead and fires on every
// matching access.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "vsparse/common/macros.hpp"
#include "vsparse/serve/error.hpp"

namespace vsparse::gpusim {

struct KernelStats;
class SmTrace;

/// Where in the modeled machine a fault strikes.
enum class FaultSite : std::uint8_t {
  kDramRead = 0,  ///< global-load data (DRAM cell / return path)
  kL2Line,        ///< global-load data attributed to the L2 line
  kSmemRead,      ///< shared-memory load data
  kMmaFrag,       ///< tensor-core operand register fragment
  kNumSites
};

constexpr int kNumFaultSites = static_cast<int>(FaultSite::kNumSites);

/// Human-readable site name ("dram", "l2", "smem", "mma").
const char* fault_site_name(FaultSite site);

/// A detected-uncorrectable ECC event: a double-bit upset on a DRAM or
/// L2 read with ECC enabled.  Carries the site and the device address
/// of the poisoned word so callers can map it back to an operand.
/// Classified ErrorCode::kEccUncorrectable (retryable — the upset may
/// be transient) in the serving taxonomy.
class EccError : public vsparse::Error {
 public:
  EccError(FaultSite site, std::uint64_t addr, int sm_id);

  FaultSite site() const { return site_; }
  std::uint64_t addr() const { return addr_; }
  int sm_id() const { return sm_id_; }

 private:
  FaultSite site_;
  std::uint64_t addr_;
  int sm_id_;
};

/// A launch exceeded its per-CTA op budget (SimOptions::watchdog_cta_ops):
/// some CTA body issued more warp ops than the watchdog allows, which in
/// this simulator is the signature of a malformed pattern (e.g. a cyclic
/// row_ptr) driving a kernel loop forever.  The engine augments the
/// message with a per-SM progress dump before rethrowing.  Classified
/// ErrorCode::kLaunchTimeout (not retryable — the same launch would
/// time out again — but fallback-eligible) in the serving taxonomy.
class LaunchTimeoutError : public vsparse::Error {
 public:
  explicit LaunchTimeoutError(const std::string& what)
      : vsparse::Error(ErrorCode::kLaunchTimeout, "gpusim.watchdog", what) {}
};

/// One targeted upset.  `addr` is a device byte address for kDramRead /
/// kL2Line, a CTA shared-memory byte offset for kSmemRead, and a per-SM
/// MMA call index for kMmaFrag.  `bit` selects the bit within that byte
/// (memory sites) or the flat bit index into the concatenated A|B
/// fragment bytes (kMmaFrag); `n_bits` adjacent bits are flipped, so
/// n_bits == 2 exercises the SEC-DED detected-uncorrectable path.
struct FaultTarget {
  FaultSite site = FaultSite::kDramRead;
  std::uint64_t addr = 0;
  int bit = 0;
  int n_bits = 1;
  bool sticky = false;  ///< hard fault: fire on every matching access
};

/// Per-site random upset probabilities (per lane value read for the
/// memory sites, per MMA call for kMmaFrag).  Rate faults are
/// single-bit; the flipped bit is chosen by the decision hash.
struct FaultRates {
  double dram_read = 0.0;
  double l2_line = 0.0;
  double smem_read = 0.0;
  double mma_frag = 0.0;
};

/// A seeded, deterministic description of every fault a device will
/// experience.  Attach with Device::set_fault_plan(&plan); the plan
/// must outlive the attachment.  The plan carries the cross-launch
/// armed state of targeted faults and process-lifetime totals of
/// injected/masked/detected upsets (the per-launch split of the same
/// events lands in KernelStats).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0, bool ecc_enabled = false);

  // -- configuration ---------------------------------------------------
  void add_target(const FaultTarget& target);
  void set_rates(const FaultRates& rates) { rates_ = rates; }
  void set_ecc(bool on) { ecc_ = on; }

  std::uint64_t seed() const { return seed_; }
  bool ecc() const { return ecc_; }
  const FaultRates& rates() const { return rates_; }
  const std::vector<FaultTarget>& targets() const { return targets_; }

  /// Size the per-(target, SM) armed state.  Called by
  /// Device::set_fault_plan; idempotent for the same SM count.
  void prepare(int num_sms);

  /// Re-arm every fired target and zero the totals (fresh campaign).
  void rearm();

  // -- process-lifetime totals (survive an EccError unwind) ------------
  std::uint64_t injected() const { return injected_.load(std::memory_order_relaxed); }
  std::uint64_t masked() const { return masked_.load(std::memory_order_relaxed); }
  std::uint64_t detected() const { return detected_.load(std::memory_order_relaxed); }

  void note_injected() { injected_.fetch_add(1, std::memory_order_relaxed); }
  void note_masked() { masked_.fetch_add(1, std::memory_order_relaxed); }
  void note_detected() { detected_.fetch_add(1, std::memory_order_relaxed); }

 private:
  friend struct FaultState;

  /// The per-(target, SM) armed flag; each slot is only ever touched by
  /// the host thread executing that SM, so plain bytes suffice.
  std::uint8_t& fired(std::size_t target, int sm_id) {
    return fired_[target * static_cast<std::size_t>(num_sms_) +
                  static_cast<std::size_t>(sm_id)];
  }

  std::uint64_t seed_;
  bool ecc_;
  FaultRates rates_;
  std::vector<FaultTarget> targets_;
  int num_sms_ = 0;
  std::vector<std::uint8_t> fired_;
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> masked_{0};
  std::atomic<std::uint64_t> detected_{0};
};

/// Per-SM injection state for one launch: the plan pointer (null when
/// no plan is attached — the fast path the warp ops branch on) plus
/// this SM's per-site access counters, which drive the deterministic
/// rate decisions.  Lives inside SmContext; born fresh each launch.
struct FaultState {
  FaultPlan* plan = nullptr;
  int sm_id = 0;
  SmTrace* trace = nullptr;  ///< per-launch trace buffer (null = untraced)
  std::uint64_t site_count[kNumFaultSites] = {};

  /// Global-load return data: applies kDramRead then kL2Line faults to
  /// the `len` bytes at `data` read from device address `addr`.
  /// Corrects/detects per the ECC model; throws EccError on a detected
  /// double-bit upset.
  void on_global_read(std::uint64_t addr, void* data, std::size_t len,
                      KernelStats& stats);

  /// Shared-memory load return data (`offset` = CTA smem byte offset).
  void on_smem_read(std::uint32_t offset, void* data, std::size_t len,
                    KernelStats& stats);

  /// Tensor-core operand fragments, as raw bytes (A then B).  Callers
  /// pass mutable copies of the fragments.
  void on_mma_frags(void* a, std::size_t a_len, void* b, std::size_t b_len,
                    KernelStats& stats);
};

}  // namespace vsparse::gpusim

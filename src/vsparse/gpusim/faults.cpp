#include "vsparse/gpusim/faults.hpp"

#include <cstring>
#include <sstream>

#include "vsparse/gpusim/stats.hpp"
#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {
namespace {

// splitmix64 — the same finalizer the Rng seeding uses; good enough to
// decorrelate (seed, site, sm, counter) tuples into uniform u64s.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic per-access decision hash.  Everything a rate fault
// needs (fire? which bit? which lane byte?) derives from this one
// value, so a decision costs one hash on the slow path only.
std::uint64_t decision(std::uint64_t seed, FaultSite site, int sm_id,
                       std::uint64_t count) {
  std::uint64_t h = mix64(seed ^ (0xabcdull + static_cast<std::uint64_t>(site)));
  h = mix64(h ^ static_cast<std::uint64_t>(sm_id));
  return mix64(h ^ count);
}

// p in [0,1] compared against the top 53 bits of the hash.
bool fires(std::uint64_t h, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  return u < p;
}

// Flip `n_bits` adjacent bits starting at flat bit index `bit` within
// the `len`-byte buffer; bits that fall off the end are dropped.
int flip_bits(void* data, std::size_t len, int bit, int n_bits) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  int flipped = 0;
  for (int i = 0; i < n_bits; ++i) {
    const int b = bit + i;
    const std::size_t byte = static_cast<std::size_t>(b) >> 3;
    if (byte >= len) break;
    bytes[byte] ^= static_cast<std::uint8_t>(1u << (b & 7));
    ++flipped;
  }
  return flipped;
}

bool ecc_protected(FaultSite site) {
  return site == FaultSite::kDramRead || site == FaultSite::kL2Line;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kDramRead: return "dram";
    case FaultSite::kL2Line: return "l2";
    case FaultSite::kSmemRead: return "smem";
    case FaultSite::kMmaFrag: return "mma";
    default: return "?";
  }
}

EccError::EccError(FaultSite site, std::uint64_t addr, int sm_id)
    : vsparse::Error(ErrorCode::kEccUncorrectable, "gpusim.ecc", [&] {
        std::ostringstream os;
        os << "EccError: uncorrectable (double-bit) upset on "
           << fault_site_name(site) << " read at device addr 0x" << std::hex
           << addr << std::dec << " (sm " << sm_id << ")";
        return os.str();
      }()),
      site_(site),
      addr_(addr),
      sm_id_(sm_id) {}

FaultPlan::FaultPlan(std::uint64_t seed, bool ecc_enabled)
    : seed_(seed), ecc_(ecc_enabled) {}

void FaultPlan::add_target(const FaultTarget& target) {
  VSPARSE_CHECK_MSG(target.n_bits >= 1, "FaultTarget: n_bits must be >= 1");
  VSPARSE_CHECK_MSG(target.bit >= 0, "FaultTarget: bit must be >= 0");
  targets_.push_back(target);
  if (num_sms_ > 0) fired_.resize(targets_.size() * num_sms_, 0);
}

void FaultPlan::prepare(int num_sms) {
  VSPARSE_CHECK_MSG(num_sms > 0, "FaultPlan::prepare: num_sms must be > 0");
  if (num_sms_ == num_sms) {
    fired_.resize(targets_.size() * static_cast<std::size_t>(num_sms_), 0);
    return;
  }
  VSPARSE_CHECK_MSG(num_sms_ == 0,
                    "FaultPlan: already prepared for a different SM count");
  num_sms_ = num_sms;
  fired_.assign(targets_.size() * static_cast<std::size_t>(num_sms_), 0);
}

void FaultPlan::rearm() {
  std::fill(fired_.begin(), fired_.end(), 0);
  injected_.store(0, std::memory_order_relaxed);
  masked_.store(0, std::memory_order_relaxed);
  detected_.store(0, std::memory_order_relaxed);
}

namespace {

// Shared post-flip ECC bookkeeping.  Returns true when the flip was
// corrected (data must be restored by the caller); throws on a
// detected-uncorrectable upset.  The single place every fault outcome
// passes through, so it is also where fault trace events are emitted.
bool ecc_scrub(FaultState& st, FaultSite site, std::uint64_t addr,
               int flipped, KernelStats& stats) {
  FaultPlan& plan = *st.plan;
  plan.note_injected();
  ++stats.faults_injected;
  if (st.trace != nullptr) {
    st.trace->emit(TraceEventKind::kFaultInjected, /*cta=*/-1, /*warp=*/-1,
                   static_cast<std::uint64_t>(site), addr);
  }
  if (!(plan.ecc() && ecc_protected(site))) return false;
  if (flipped == 1) {
    plan.note_masked();
    ++stats.faults_masked;
    if (st.trace != nullptr) {
      st.trace->emit(TraceEventKind::kFaultMasked, /*cta=*/-1, /*warp=*/-1,
                     static_cast<std::uint64_t>(site), addr);
    }
    return true;
  }
  plan.note_detected();
  ++stats.faults_detected;
  if (st.trace != nullptr) {
    st.trace->emit(TraceEventKind::kFaultDetected, /*cta=*/-1, /*warp=*/-1,
                   static_cast<std::uint64_t>(site), addr);
  }
  throw EccError(site, addr, st.sm_id);
}

}  // namespace

void FaultState::on_global_read(std::uint64_t addr, void* data,
                                std::size_t len, KernelStats& stats) {
  const std::uint64_t count_dram = site_count[static_cast<int>(FaultSite::kDramRead)]++;
  const std::uint64_t count_l2 = site_count[static_cast<int>(FaultSite::kL2Line)]++;
  auto* bytes = static_cast<std::uint8_t*>(data);

  // Targeted upsets: any armed target whose byte address falls inside
  // [addr, addr + len) strikes this read.
  const auto& targets = plan->targets();
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const FaultTarget& tgt = targets[t];
    if (tgt.site != FaultSite::kDramRead && tgt.site != FaultSite::kL2Line)
      continue;
    if (tgt.addr < addr || tgt.addr >= addr + len) continue;
    std::uint8_t& armed = plan->fired(t, sm_id);
    if (armed && !tgt.sticky) continue;
    armed = 1;
    const std::size_t off = static_cast<std::size_t>(tgt.addr - addr);
    std::uint8_t saved = bytes[off];
    const int flipped =
        flip_bits(bytes + off, len - off, tgt.bit & 7, tgt.n_bits);
    if (ecc_scrub(*this, tgt.site, tgt.addr, flipped, stats))
      bytes[off] = saved;  // single-bit: SEC-DED corrected in flight
  }

  // Rate upsets: one decision per site per value read; single-bit.
  const FaultRates& rates = plan->rates();
  const struct {
    FaultSite site;
    double rate;
    std::uint64_t count;
  } rate_sites[] = {
      {FaultSite::kDramRead, rates.dram_read, count_dram},
      {FaultSite::kL2Line, rates.l2_line, count_l2},
  };
  for (const auto& rs : rate_sites) {
    if (rs.rate <= 0.0) continue;
    const std::uint64_t h = decision(plan->seed(), rs.site, sm_id, rs.count);
    if (!fires(h, rs.rate)) continue;
    const std::size_t off = static_cast<std::size_t>((h >> 8) % len);
    const int bit = static_cast<int>((h >> 3) & 7);
    std::uint8_t saved = bytes[off];
    flip_bits(bytes + off, len - off, bit, 1);
    if (ecc_scrub(*this, rs.site, addr + off, 1, stats))
      bytes[off] = saved;
  }
}

void FaultState::on_smem_read(std::uint32_t offset, void* data,
                              std::size_t len, KernelStats& stats) {
  const std::uint64_t count = site_count[static_cast<int>(FaultSite::kSmemRead)]++;
  auto* bytes = static_cast<std::uint8_t*>(data);

  const auto& targets = plan->targets();
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const FaultTarget& tgt = targets[t];
    if (tgt.site != FaultSite::kSmemRead) continue;
    if (tgt.addr < offset || tgt.addr >= offset + len) continue;
    std::uint8_t& armed = plan->fired(t, sm_id);
    if (armed && !tgt.sticky) continue;
    armed = 1;
    const std::size_t off = static_cast<std::size_t>(tgt.addr - offset);
    const int flipped =
        flip_bits(bytes + off, len - off, tgt.bit & 7, tgt.n_bits);
    ecc_scrub(*this, tgt.site, tgt.addr, flipped, stats);
  }

  const double rate = plan->rates().smem_read;
  if (rate > 0.0) {
    const std::uint64_t h =
        decision(plan->seed(), FaultSite::kSmemRead, sm_id, count);
    if (fires(h, rate)) {
      const std::size_t off = static_cast<std::size_t>((h >> 8) % len);
      flip_bits(bytes + off, len - off, static_cast<int>((h >> 3) & 7), 1);
      ecc_scrub(*this, FaultSite::kSmemRead, offset + off, 1, stats);
    }
  }
}

void FaultState::on_mma_frags(void* a, std::size_t a_len, void* b,
                              std::size_t b_len, KernelStats& stats) {
  const std::uint64_t count = site_count[static_cast<int>(FaultSite::kMmaFrag)]++;

  // For kMmaFrag, FaultTarget::addr is this SM's MMA call index and
  // FaultTarget::bit is the flat bit index into the A|B byte stream.
  const std::size_t total_bits = (a_len + b_len) * 8;
  auto flip_flat = [&](int bit, int n_bits) {
    int flipped = 0;
    for (int i = 0; i < n_bits; ++i) {
      const std::size_t fb = static_cast<std::size_t>(bit) + i;
      if (fb >= total_bits) break;
      const std::size_t byte = fb >> 3;
      std::uint8_t* p = byte < a_len
                            ? static_cast<std::uint8_t*>(a) + byte
                            : static_cast<std::uint8_t*>(b) + (byte - a_len);
      *p ^= static_cast<std::uint8_t>(1u << (fb & 7));
      ++flipped;
    }
    return flipped;
  };

  const auto& targets = plan->targets();
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const FaultTarget& tgt = targets[t];
    if (tgt.site != FaultSite::kMmaFrag || tgt.addr != count) continue;
    std::uint8_t& armed = plan->fired(t, sm_id);
    if (armed && !tgt.sticky) continue;
    armed = 1;
    const int flipped = flip_flat(tgt.bit, tgt.n_bits);
    ecc_scrub(*this, tgt.site, count, flipped, stats);
  }

  const double rate = plan->rates().mma_frag;
  if (rate > 0.0) {
    const std::uint64_t h =
        decision(plan->seed(), FaultSite::kMmaFrag, sm_id, count);
    if (fires(h, rate)) {
      flip_flat(static_cast<int>((h >> 8) % total_bits), 1);
      ecc_scrub(*this, FaultSite::kMmaFrag, count, 1, stats);
    }
  }
}

}  // namespace vsparse::gpusim

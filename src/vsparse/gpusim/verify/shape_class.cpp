#include "vsparse/gpusim/verify/shape_class.hpp"

#include <sstream>

namespace vsparse::verify {

std::string ShapeCorner::str() const {
  std::ostringstream os;
  os << "m=" << m << " k=" << k << " n=" << n << " v=" << v
     << " density=" << density;
  return os.str();
}

std::vector<ShapeCorner> ShapeClass::corners() const {
  std::vector<ShapeCorner> out;
  const auto ends = [](const DimRange& r) {
    return r.lo == r.hi ? std::vector<int>{r.lo}
                        : std::vector<int>{r.lo, r.hi};
  };
  const std::vector<double> dens =
      d_lo == d_hi ? std::vector<double>{d_lo}
                   : std::vector<double>{d_lo, d_hi};
  for (int mm : ends(m)) {
    for (int kk : ends(k)) {
      for (int nn : ends(n)) {
        for (double dd : dens) {
          out.push_back(ShapeCorner{mm, kk, nn, v, dd});
        }
      }
    }
  }
  return out;
}

ShapeClass ShapeClass::singleton(const std::string& name,
                                 const ShapeCorner& s) {
  ShapeClass c;
  c.name = name;
  c.v = s.v;
  c.m = {s.m, s.m, 1};
  c.k = {s.k, s.k, 1};
  c.n = {s.n, s.n, 1};
  c.d_lo = c.d_hi = s.density;
  return c;
}

std::vector<ShapeClass> builtin_shape_classes() {
  std::vector<ShapeClass> out;

  // fig05 profile: SpMM at 90 % sparsity, V = 1 (m x k from the paper
  // and quick scales, n = 256).
  {
    ShapeClass c;
    c.name = "fig05";
    c.v = 1;
    c.m = {1024, 2048, 64};
    c.k = {512, 1024, 64};
    c.n = {256, 256, 64};
    c.d_lo = 0.05;
    c.d_hi = 0.15;
    out.push_back(c);
  }

  // fig05 dense GEMM operands (density 1; the dense kernels ignore it).
  {
    ShapeClass c;
    c.name = "fig05-dense";
    c.v = 1;
    c.m = {1024, 2048, 64};
    c.k = {512, 1024, 64};
    c.n = {256, 256, 64};
    c.d_lo = c.d_hi = 1.0;
    out.push_back(c);
  }

  // fig17 DLMC-style sweep: suite_shapes x n in {64..256} x sparsity
  // grid {0.5 .. 0.98}, per vector width.
  for (int v : {1, 2, 4, 8}) {
    ShapeClass c;
    c.name = "fig17-v" + std::to_string(v);
    c.v = v;
    c.m = {256, 2048, 64};
    c.k = {256, 2048, 64};
    c.n = {64, 256, 64};
    c.d_lo = 0.02;
    c.d_hi = 0.5;
    out.push_back(c);
  }
  return out;
}

}  // namespace vsparse::verify

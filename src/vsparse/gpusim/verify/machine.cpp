#include "vsparse/gpusim/verify/machine.hpp"

#include <algorithm>
#include <sstream>

namespace vsparse::verify {

namespace {

const char* pattern_name(SpanPattern p) {
  switch (p) {
    case SpanPattern::kAffine:
      return "affine";
    case SpanPattern::kSegmented:
      return "segmented-affine";
    case SpanPattern::kGather:
      return "gather";
    case SpanPattern::kIrregular:
      return "irregular";
  }
  return "?";
}

}  // namespace

void CtaModel::launch(int warps, std::int64_t smem_bytes) {
  warps_ = warps;
  smem_bytes_ = smem_bytes;
  epoch_ = 0;
  warp_exited_.assign(static_cast<std::size_t>(warps), false);
  smem_log_.clear();
}

int CtaModel::gbuf(const std::string& name, std::int64_t bytes,
                   std::int64_t slack) {
  gbufs_.push_back(Gbuf{name, bytes, slack});
  return static_cast<int>(gbufs_.size()) - 1;
}

bool CtaModel::require(bool ok, const char* site, const std::string& detail) {
  if (!ok) {
    rejected_ = true;
    (void)site;
    (void)detail;
  }
  return ok;
}

void CtaModel::approximate(const char* site, const std::string& why) {
  if (!unknown_) {
    unknown_ = true;
    unknown_why_ = std::string(site) + ": " + why;
  }
}

void CtaModel::violate(const char* site, std::string detail) {
  violations_.push_back(Violation{site, std::move(detail)});
}

void CtaModel::lint(const char* rule, const char* site, std::string detail) {
  // Dedup by (rule, site): the same op replayed at several corners or
  // loop extremes is one finding.
  for (const LintFinding& f : lints_) {
    if (f.rule == rule && f.site == site) return;
  }
  lints_.push_back(LintFinding{rule, site, std::move(detail)});
}

bool CtaModel::check_descriptor(int segs, int width, std::int64_t stride,
                                int access, std::uint32_t mask,
                                const char* site) {
  std::ostringstream bad;
  if (segs < 1 || width < 1 || segs * width > 32) {
    bad << "segs=" << segs << " width=" << width
        << " violates 1 <= segs*width <= 32";
  } else if (segs * width < 32 && (mask >> (segs * width)) != 0) {
    bad << "mask has active bits beyond segs*width=" << segs * width;
  } else if (width > 1 && mask != 0 && access > 0 && stride % access != 0) {
    bad << "stride=" << stride << " not a multiple of access=" << access;
  } else {
    return true;
  }
  lint("descriptor-invalid", site, bad.str());
  violate(site, "invalid span descriptor: " + bad.str());
  return false;
}

void CtaModel::check_global(int buf, const std::vector<Ival>& seg_bases,
                            int width, std::int64_t stride, int access,
                            std::uint32_t mask, const char* site,
                            bool is_store) {
  const int segs = static_cast<int>(seg_bases.size());
  if (!check_descriptor(segs, width, stride, access, mask, site)) return;
  const Gbuf& g = gbufs_[static_cast<std::size_t>(buf)];
  for (int s = 0; s < segs; ++s) {
    int t_lo = -1, t_hi = -1;
    for (int t = 0; t < width; ++t) {
      if (mask & (1u << (s * width + t))) {
        if (t_lo < 0) t_lo = t;
        t_hi = t;
      }
    }
    if (t_lo < 0) continue;
    const std::int64_t lo = seg_bases[static_cast<std::size_t>(s)].lo +
                            static_cast<std::int64_t>(t_lo) * stride;
    const std::int64_t hi = seg_bases[static_cast<std::size_t>(s)].hi +
                            static_cast<std::int64_t>(t_hi) * stride + access;
    if (lo < 0) {
      std::ostringstream os;
      os << (is_store ? "store" : "load") << " below buffer " << g.name
         << ": segment " << s << " first byte " << lo;
      violate(site, os.str());
      continue;
    }
    if (hi <= g.bytes) continue;
    if (!is_store && hi <= g.bytes + g.slack) {
      std::ostringstream os;
      os << "load of " << g.name << " in bounds only through "
         << (hi - g.bytes) << " B of the buffer's " << g.slack
         << " B tail slack";
      lint("slack-dependent-tail", site, os.str());
      continue;
    }
    std::ostringstream os;
    os << (is_store ? "store" : "load") << " past buffer " << g.name << " ("
       << g.bytes << " B + " << g.slack << " B slack): segment " << s
       << " lanes [" << t_lo << "," << t_hi << "] reach byte " << hi;
    violate(site, os.str());
  }
}

void CtaModel::ldg(int buf, const std::vector<Ival>& seg_bases, int width,
                   std::int64_t stride, int access, std::uint32_t mask,
                   const char* site) {
  check_global(buf, seg_bases, width, stride, access, mask, site, false);
}

void CtaModel::stg(int buf, const std::vector<Ival>& seg_bases, int width,
                   std::int64_t stride, int access, std::uint32_t mask,
                   const char* site) {
  check_global(buf, seg_bases, width, stride, access, mask, site, true);
}

void CtaModel::ldg_lanes(int buf, Ival lo, Ival hi, SpanPattern pattern,
                         const char* site) {
  const Gbuf& g = gbufs_[static_cast<std::size_t>(buf)];
  if (pattern == SpanPattern::kAffine || pattern == SpanPattern::kSegmented) {
    lint("per-lane-span", site,
         std::string("per-lane global load with a ") + pattern_name(pattern) +
             " address pattern is expressible as one ldg_span");
  }
  if (lo.lo < 0) {
    violate(site, "per-lane load below buffer " + g.name);
    return;
  }
  if (hi.hi <= g.bytes) return;
  if (hi.hi <= g.bytes + g.slack) {
    std::ostringstream os;
    os << "per-lane load of " << g.name << " in bounds only through "
       << (hi.hi - g.bytes) << " B of tail slack";
    lint("slack-dependent-tail", site, os.str());
    return;
  }
  std::ostringstream os;
  os << "per-lane load past buffer " << g.name << " (" << g.bytes << " B + "
     << g.slack << " B slack): hull reaches byte " << hi.hi;
  violate(site, os.str());
}

void CtaModel::stg_lanes(int buf, Ival lo, Ival hi, SpanPattern pattern,
                         const char* site) {
  const Gbuf& g = gbufs_[static_cast<std::size_t>(buf)];
  if (pattern == SpanPattern::kAffine || pattern == SpanPattern::kSegmented) {
    lint("per-lane-span", site,
         std::string("per-lane global store with a ") + pattern_name(pattern) +
             " address pattern is expressible as one stg_span");
  }
  if (lo.lo < 0 || hi.hi > g.bytes) {
    std::ostringstream os;
    os << "per-lane store outside buffer " << g.name << " (" << g.bytes
       << " B): hull [" << lo.lo << "," << hi.hi << ")";
    violate(site, os.str());
  }
}

void CtaModel::smem_op(int warp, const std::vector<std::int64_t>& seg_bases,
                       int width, std::int64_t stride, int access,
                       std::uint32_t mask, const char* site, bool is_store) {
  const int segs = static_cast<int>(seg_bases.size());
  if (!check_descriptor(segs, width, stride, access, mask, site)) return;

  // Bounds over active lanes + the engine's conservative hull pre-scan
  // (highest active lane applied to every active segment): a span that
  // passes exact bounds but fails the hull self-diverts to the
  // per-lane path at execution time.
  int hi_lane = -1;
  for (int t = 0; t < segs * width; ++t) {
    if (mask & (1u << t)) hi_lane = t % width;
  }
  bool exact_ok = true;
  bool hull_ok = true;
  for (int s = 0; s < segs; ++s) {
    int t_lo = -1, t_hi = -1;
    for (int t = 0; t < width; ++t) {
      if (mask & (1u << (s * width + t))) {
        if (t_lo < 0) t_lo = t;
        t_hi = t;
      }
    }
    if (t_lo < 0) continue;
    const std::int64_t lo =
        seg_bases[static_cast<std::size_t>(s)] +
        static_cast<std::int64_t>(t_lo) * stride;
    const std::int64_t hi = seg_bases[static_cast<std::size_t>(s)] +
                            static_cast<std::int64_t>(t_hi) * stride + access;
    if (lo < 0 || hi > smem_bytes_) {
      exact_ok = false;
      std::ostringstream os;
      os << (is_store ? "sts" : "lds") << " outside shared memory ("
         << smem_bytes_ << " B): segment " << s << " bytes [" << lo << ","
         << hi << ")";
      violate(site, os.str());
    }
    const std::int64_t hull_hi =
        seg_bases[static_cast<std::size_t>(s)] +
        static_cast<std::int64_t>(std::max(hi_lane, t_hi)) * stride + access;
    if (hull_hi > smem_bytes_) hull_ok = false;
  }
  if (exact_ok && !hull_ok) {
    lint("span-self-divert", site,
         "span passes exact bounds but fails the engine's hull pre-scan — "
         "it executes per-lane even without the sanitizer");
  }
  if (!exact_ok) return;

  // Race check: exact span overlap against every other warp's accesses
  // in the current barrier epoch where either side writes.
  SmemRec rec;
  rec.warp = warp;
  rec.epoch = epoch_;
  rec.is_store = is_store;
  rec.seg_base.reserve(seg_bases.size());
  for (std::int64_t b : seg_bases) {
    rec.seg_base.push_back(static_cast<std::uint64_t>(b));
  }
  rec.width = width;
  rec.stride = stride;
  rec.access = access;
  rec.mask = mask;
  rec.site = site;

  const SpanRef me{rec.seg_base.data(), segs, width,
                   static_cast<std::uint64_t>(stride),
                   static_cast<std::uint32_t>(access), mask};
  for (const SmemRec& other : smem_log_) {
    if (other.warp == warp) continue;
    if (!other.is_store && !is_store) continue;
    const SpanRef them{other.seg_base.data(),
                       static_cast<int>(other.seg_base.size()), other.width,
                       static_cast<std::uint64_t>(other.stride),
                       static_cast<std::uint32_t>(other.access), other.mask};
    if (spans_overlap(me, them)) {
      std::ostringstream os;
      os << (is_store ? "sts" : "lds") << " overlaps "
         << (other.is_store ? "sts" : "lds") << " at " << other.site
         << " from warp " << other.warp << " in the same barrier epoch "
         << epoch_;
      violate(site, os.str());
    }
  }
  smem_log_.push_back(std::move(rec));
}

void CtaModel::sts(int warp, const std::vector<std::int64_t>& seg_bases,
                   int width, std::int64_t stride, int access,
                   std::uint32_t mask, const char* site) {
  smem_op(warp, seg_bases, width, stride, access, mask, site, true);
}

void CtaModel::lds(int warp, const std::vector<std::int64_t>& seg_bases,
                   int width, std::int64_t stride, int access,
                   std::uint32_t mask, const char* site) {
  smem_op(warp, seg_bases, width, stride, access, mask, site, false);
}

void CtaModel::lds_lanes(int warp, std::int64_t lo, std::int64_t hi,
                         SpanPattern pattern, const char* site) {
  if (pattern == SpanPattern::kAffine || pattern == SpanPattern::kSegmented) {
    lint("per-lane-span", site,
         std::string("per-lane shared-memory load with a ") +
             pattern_name(pattern) + " pattern is expressible as one lds_span");
  }
  if (lo < 0 || hi > smem_bytes_) {
    std::ostringstream os;
    os << "per-lane lds outside shared memory (" << smem_bytes_
       << " B): hull [" << lo << "," << hi << ")";
    violate(site, os.str());
    return;
  }
  // Conservative race treatment: model as a single contiguous span.
  smem_op(warp, {lo}, 1, 0, static_cast<int>(hi - lo), 0x1u, site, false);
}

void CtaModel::sts_lanes(int warp, std::int64_t lo, std::int64_t hi,
                         SpanPattern pattern, const char* site) {
  if (pattern == SpanPattern::kAffine || pattern == SpanPattern::kSegmented) {
    lint("per-lane-span", site,
         std::string("per-lane shared-memory store with a ") +
             pattern_name(pattern) + " pattern is expressible as one sts_span");
  }
  if (lo < 0 || hi > smem_bytes_) {
    std::ostringstream os;
    os << "per-lane sts outside shared memory (" << smem_bytes_
       << " B): hull [" << lo << "," << hi << ")";
    violate(site, os.str());
    return;
  }
  smem_op(warp, {lo}, 1, 0, static_cast<int>(hi - lo), 0x1u, site, true);
}

void CtaModel::sync() {
  for (int w = 0; w < warps_; ++w) {
    if (warp_exited_[static_cast<std::size_t>(w)]) {
      std::ostringstream os;
      os << "cta.sync() in barrier epoch " << epoch_ << " while warp " << w
         << " exited early: arrival counts diverge";
      violate("cta.sync", os.str());
      return;
    }
  }
  ++epoch_;
  smem_log_.clear();
}

void CtaModel::skip_rest(int warp) {
  warp_exited_[static_cast<std::size_t>(warp)] = true;
}

void CtaModel::finish() {
  // Race audit is eager; nothing left to flush.
  smem_log_.clear();
}

}  // namespace vsparse::verify

// Saturating integer intervals — the abstract domain the static
// launch verifier evaluates address expressions in.
//
// An Ival is a closed interval [lo, hi] over int64 with saturating
// arithmetic: address expressions in the kernels are sums and products
// of loop indices, strides, and data-dependent gather indices, so a
// sound hull only needs monotone interval arithmetic.  Saturation (not
// wraparound) keeps the hull conservative when a contract multiplies
// two large extents — a saturated bound can only widen the interval,
// never alias it back into range.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "vsparse/common/macros.hpp"

namespace vsparse::verify {

namespace detail {

inline std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return (a > 0) ? std::numeric_limits<std::int64_t>::max()
                   : std::numeric_limits<std::int64_t>::min();
  }
  return out;
}

inline std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    const bool neg = (a < 0) != (b < 0);
    return neg ? std::numeric_limits<std::int64_t>::min()
               : std::numeric_limits<std::int64_t>::max();
  }
  return out;
}

}  // namespace detail

/// Closed interval [lo, hi]; lo <= hi always holds.
struct Ival {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  Ival() = default;
  /*implicit*/ Ival(std::int64_t point) : lo(point), hi(point) {}
  Ival(std::int64_t lo_in, std::int64_t hi_in) : lo(lo_in), hi(hi_in) {
    VSPARSE_DCHECK(lo_in <= hi_in);
  }

  bool is_point() const { return lo == hi; }
  bool contains(std::int64_t x) const { return lo <= x && x <= hi; }

  Ival operator+(const Ival& o) const {
    return Ival(detail::sat_add(lo, o.lo), detail::sat_add(hi, o.hi));
  }
  Ival operator-(const Ival& o) const {
    return Ival(detail::sat_add(lo, -o.hi), detail::sat_add(hi, -o.lo));
  }
  Ival operator*(const Ival& o) const {
    const std::int64_t c[4] = {
        detail::sat_mul(lo, o.lo), detail::sat_mul(lo, o.hi),
        detail::sat_mul(hi, o.lo), detail::sat_mul(hi, o.hi)};
    return Ival(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
  }

  /// Smallest interval containing both.
  Ival hull(const Ival& o) const {
    return Ival(std::min(lo, o.lo), std::max(hi, o.hi));
  }

  std::string str() const {
    if (is_point()) return std::to_string(lo);
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  }
};

inline Ival operator+(std::int64_t a, const Ival& b) { return Ival(a) + b; }
inline Ival operator*(std::int64_t a, const Ival& b) { return Ival(a) * b; }

}  // namespace vsparse::verify

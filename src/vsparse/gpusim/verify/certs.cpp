#include "vsparse/gpusim/verify/certs.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "vsparse/serve/error.hpp"

namespace vsparse::verify {

namespace {

constexpr const char* kSite = "gpusim.verify.certs";

std::string pair_key(std::string_view kernel, std::string_view arch) {
  std::string key;
  key.reserve(kernel.size() + arch.size() + 1);
  key += kernel;
  key += '|';
  key += arch;
  return key;
}

int verdict_rank(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::kRefuted:
      return 0;
    case VerdictKind::kUnknown:
      return 1;
    case VerdictKind::kProved:
      return 2;
  }
  return 1;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else {
      out += ch;
    }
  }
}

std::string format_density(double d) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << d;
  return os.str();
}

void append_shape(std::string& out, const ShapeCorner& s) {
  out += "{\"m\": " + std::to_string(s.m) + ", \"k\": " + std::to_string(s.k) +
         ", \"n\": " + std::to_string(s.n) + ", \"v\": " + std::to_string(s.v) +
         ", \"density\": " + format_density(s.density) + "}";
}

void append_dim(std::string& out, const char* name, const DimRange& d) {
  out += '"';
  out += name;
  out += "\": {\"lo\": " + std::to_string(d.lo) +
         ", \"hi\": " + std::to_string(d.hi) +
         ", \"mod\": " + std::to_string(d.mod) + "}";
}

/// Same minimal recursive-descent reader as the policy cache
/// (kernels/policy.cpp), with the certificate-store raise site.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void expect(char ch) {
    skip_ws();
    check(pos_ < text_.size() && text_[pos_] == ch,
          std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume(char ch) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\') {
        check(pos_ < text_.size(), "truncated escape");
        ch = text_[pos_++];
        check(ch == '"' || ch == '\\' || ch == '/', "unsupported escape");
      }
      out += ch;
      check(out.size() <= kMaxCertStringLength, "string too long");
    }
    check(pos_ < text_.size(), "unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    check(pos_ > start, "expected number");
    double value = 0.0;
    try {
      value = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      check(false, "unparseable number");
    }
    check(std::isfinite(value), "non-finite number");
    return value;
  }

  int integer() {
    const double value = number();
    const double rounded = std::nearbyint(value);
    check(value == rounded && std::abs(value) <= 1e9, "expected integer");
    return static_cast<int>(rounded);
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  void check(bool ok, const std::string& what) {
    VSPARSE_CHECK_RAISE(ok, ErrorCode::kBadDispatch, kSite,
                        "malformed certificate store at offset "
                            << pos_ << ": " << what);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

ShapeCorner read_shape(JsonReader& in) {
  ShapeCorner s;
  in.expect('{');
  if (!in.consume('}')) {
    do {
      const std::string field = in.string();
      in.expect(':');
      if (field == "m") {
        s.m = in.integer();
      } else if (field == "k") {
        s.k = in.integer();
      } else if (field == "n") {
        s.n = in.integer();
      } else if (field == "v") {
        s.v = in.integer();
      } else if (field == "density") {
        s.density = in.number();
      } else {
        in.check(false, "unknown shape field \"" + field + "\"");
      }
    } while (in.consume(','));
    in.expect('}');
  }
  return s;
}

DimRange read_dim(JsonReader& in) {
  DimRange d;
  in.expect('{');
  do {
    const std::string field = in.string();
    in.expect(':');
    if (field == "lo") {
      d.lo = in.integer();
    } else if (field == "hi") {
      d.hi = in.integer();
    } else if (field == "mod") {
      d.mod = in.integer();
    } else {
      in.check(false, "unknown dim field \"" + field + "\"");
    }
  } while (in.consume(','));
  in.expect('}');
  in.check(d.lo >= 0 && d.hi >= d.lo && d.mod >= 1, "invalid dim range");
  return d;
}

ShapeClass read_class(JsonReader& in) {
  ShapeClass cls;
  in.expect('{');
  do {
    const std::string field = in.string();
    in.expect(':');
    if (field == "name") {
      cls.name = in.string();
    } else if (field == "v") {
      cls.v = in.integer();
    } else if (field == "m") {
      cls.m = read_dim(in);
    } else if (field == "k") {
      cls.k = read_dim(in);
    } else if (field == "n") {
      cls.n = read_dim(in);
    } else if (field == "d_lo") {
      cls.d_lo = in.number();
    } else if (field == "d_hi") {
      cls.d_hi = in.number();
    } else {
      in.check(false, "unknown class field \"" + field + "\"");
    }
  } while (in.consume(','));
  in.expect('}');
  in.check(!cls.name.empty(), "class missing name");
  in.check(cls.v >= 1 && cls.v <= 8, "class v out of range");
  in.check(cls.d_lo >= 0.0 && cls.d_hi >= cls.d_lo && cls.d_hi <= 1.0,
           "invalid class density range");
  return cls;
}

}  // namespace

void CertStore::put(CertEntry entry) {
  std::vector<CertEntry>& bucket =
      entries_[pair_key(entry.kernel, entry.arch)];
  for (CertEntry& existing : bucket) {
    if (existing.cls.name == entry.cls.name) {
      existing = std::move(entry);
      return;
    }
  }
  bucket.push_back(std::move(entry));
  ++count_;
}

const CertEntry* CertStore::lookup(std::string_view kernel,
                                   std::string_view arch,
                                   const ShapeCorner& shape) const {
  const auto it = entries_.find(pair_key(kernel, arch));
  if (it == entries_.end()) return nullptr;
  const CertEntry* best = nullptr;
  for (const CertEntry& entry : it->second) {
    if (!entry.cls.contains(shape)) continue;
    if (best == nullptr ||
        verdict_rank(entry.verdict) < verdict_rank(best->verdict)) {
      best = &entry;
    }
  }
  return best;
}

std::vector<const CertEntry*> CertStore::sorted_entries() const {
  std::vector<const CertEntry*> out;
  out.reserve(count_);
  for (const auto& [key, bucket] : entries_) {
    for (const CertEntry& entry : bucket) out.push_back(&entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CertEntry* a, const CertEntry* b) {
              if (a->kernel != b->kernel) return a->kernel < b->kernel;
              if (a->arch != b->arch) return a->arch < b->arch;
              return a->cls.name < b->cls.name;
            });
  return out;
}

std::string CertStore::to_json() const {
  std::string out;
  out += "{\n  \"version\": \"";
  out += kCertStoreVersion;
  out += "\",\n  \"entries\": [";
  bool first = true;
  for (const CertEntry* entry : sorted_entries()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kernel\": \"";
    append_escaped(out, entry->kernel);
    out += "\", \"arch\": \"";
    append_escaped(out, entry->arch);
    out += "\", \"class\": {\"name\": \"";
    append_escaped(out, entry->cls.name);
    out += "\", \"v\": " + std::to_string(entry->cls.v) + ", ";
    append_dim(out, "m", entry->cls.m);
    out += ", ";
    append_dim(out, "k", entry->cls.k);
    out += ", ";
    append_dim(out, "n", entry->cls.n);
    out += ", \"d_lo\": " + format_density(entry->cls.d_lo) +
           ", \"d_hi\": " + format_density(entry->cls.d_hi) + "}";
    out += ", \"verdict\": \"";
    out += verdict_name(entry->verdict);
    out += "\"";
    if (entry->verdict == VerdictKind::kRefuted) {
      out += ", \"counterexample\": ";
      append_shape(out, entry->counterexample);
    }
    if (!entry->site.empty()) {
      out += ", \"site\": \"";
      append_escaped(out, entry->site);
      out += "\"";
    }
    if (!entry->detail.empty()) {
      out += ", \"detail\": \"";
      append_escaped(out, entry->detail);
      out += "\"";
    }
    out += ", \"corners_checked\": " + std::to_string(entry->corners_checked);
    out += ", \"corners_rejected\": " +
           std::to_string(entry->corners_rejected);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

CertStore CertStore::from_json(std::string_view text) {
  VSPARSE_CHECK_RAISE(text.size() <= kMaxCertStoreBytes,
                      ErrorCode::kBadDispatch, kSite,
                      "certificate store blob is "
                          << text.size() << " B, cap " << kMaxCertStoreBytes);
  CertStore store;
  JsonReader in(text);
  in.expect('{');
  bool saw_version = false;
  if (in.consume('}')) {
    VSPARSE_RAISE(ErrorCode::kBadDispatch, kSite,
                  "certificate store has no version tag");
  }
  do {
    const std::string field = in.string();
    in.expect(':');
    if (field == "version") {
      const std::string version = in.string();
      VSPARSE_CHECK_RAISE(version == kCertStoreVersion,
                          ErrorCode::kBadDispatch, kSite,
                          "certificate store version \""
                              << version << "\" does not match \""
                              << kCertStoreVersion
                              << "\"; re-run the static verifier");
      saw_version = true;
    } else if (field == "entries") {
      in.expect('[');
      if (!in.consume(']')) {
        do {
          in.expect('{');
          CertEntry entry;
          bool saw_verdict = false;
          do {
            const std::string name = in.string();
            in.expect(':');
            if (name == "kernel") {
              entry.kernel = in.string();
            } else if (name == "arch") {
              entry.arch = in.string();
            } else if (name == "class") {
              entry.cls = read_class(in);
            } else if (name == "verdict") {
              saw_verdict = parse_verdict(in.string(), &entry.verdict);
              in.check(saw_verdict, "unknown verdict");
            } else if (name == "counterexample") {
              entry.counterexample = read_shape(in);
            } else if (name == "site") {
              entry.site = in.string();
            } else if (name == "detail") {
              entry.detail = in.string();
            } else if (name == "corners_checked") {
              entry.corners_checked = in.integer();
            } else if (name == "corners_rejected") {
              entry.corners_rejected = in.integer();
            } else {
              in.check(false, "unknown entry field \"" + name + "\"");
            }
          } while (in.consume(','));
          in.expect('}');
          in.check(!entry.kernel.empty() && !entry.arch.empty(),
                   "entry missing kernel/arch");
          in.check(!entry.cls.name.empty(), "entry missing shape class");
          in.check(saw_verdict, "entry missing verdict");
          in.check(store.count_ < kMaxCertStoreEntries, "too many entries");
          store.put(std::move(entry));
        } while (in.consume(','));
        in.expect(']');
      }
    } else {
      in.check(false, "unknown field \"" + field + "\"");
    }
  } while (in.consume(','));
  in.expect('}');
  VSPARSE_CHECK_RAISE(saw_version, ErrorCode::kBadDispatch, kSite,
                      "certificate store has no version tag");
  VSPARSE_CHECK_RAISE(in.at_end(), ErrorCode::kBadDispatch, kSite,
                      "trailing content after certificate store object");
  return store;
}

void CertStore::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  VSPARSE_CHECK_RAISE(out.good(), ErrorCode::kBadDispatch, kSite,
                      "cannot open certificate store for writing: " << path);
  const std::string text = to_json();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  VSPARSE_CHECK_RAISE(out.good(), ErrorCode::kBadDispatch, kSite,
                      "short write persisting certificate store: " << path);
}

CertStore CertStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VSPARSE_CHECK_RAISE(in.good(), ErrorCode::kBadDispatch, kSite,
                      "cannot open certificate store: " << path);
  in.seekg(0, std::ios::end);
  const auto bytes = in.tellg();
  VSPARSE_CHECK_RAISE(
      bytes >= 0 && static_cast<std::uint64_t>(bytes) <= kMaxCertStoreBytes,
      ErrorCode::kBadDispatch, kSite,
      "certificate store file is " << bytes << " B, cap "
                                   << kMaxCertStoreBytes << ": " << path);
  in.seekg(0, std::ios::beg);
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

}  // namespace vsparse::verify

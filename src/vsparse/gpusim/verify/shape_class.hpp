// Shape classes — the parameter-space abstraction the static launch
// verifier quantifies over.
//
// A ShapeClass is a box over (M, K, N, density) with a per-dimension
// alignment modulus and an exact vector width V: it denotes every
// concrete shape whose extents lie in the box and respect the moduli.
// Every address expression the kernels build is monotone in each of
// M, K, N, and the per-row nonzero count (strides and extents are
// nonnegative), so bounds/predication facts proved at the 2^d corner
// shapes — with the data-dependent quantities (per-row nonzero count,
// gather columns) evaluated as intervals at each corner — hold for the
// whole class.  This is the interval/affine abstract domain of
// ISSUE 10 in its cheapest complete form: corners are concrete, only
// data-dependent values stay symbolic.
#pragma once

#include <string>
#include <vector>

namespace vsparse::verify {

/// One concrete shape — a corner of a ShapeClass, and the form a
/// refutation's counterexample is reported in.
struct ShapeCorner {
  int m = 0;
  int k = 0;
  int n = 0;
  int v = 1;
  double density = 1.0;  ///< fraction of nonzero scalars

  std::string str() const;
};

/// Inclusive extent range with an alignment modulus: denotes
/// { x : lo <= x <= hi, x % mod == 0 }.  lo and hi must themselves be
/// multiples of mod.
struct DimRange {
  int lo = 0;
  int hi = 0;
  int mod = 1;

  bool contains(int x) const {
    return x >= lo && x <= hi && (mod <= 1 || x % mod == 0);
  }
};

struct ShapeClass {
  std::string name;  ///< stable id ("fig17-v4", ...)
  int v = 1;         ///< exact vector width
  DimRange m, k, n;
  double d_lo = 0.0;  ///< density range (fraction nonzero)
  double d_hi = 1.0;

  bool contains(const ShapeCorner& s) const {
    return s.v == v && m.contains(s.m) && k.contains(s.k) && n.contains(s.n) &&
           s.density >= d_lo - 1e-12 && s.density <= d_hi + 1e-12;
  }

  /// The corner shapes: {lo,hi} per extent dimension x density extremes
  /// (deduplicated when lo == hi).
  std::vector<ShapeCorner> corners() const;

  /// Degenerate single-shape class (used by the shape-corpus tests).
  static ShapeClass singleton(const std::string& name, const ShapeCorner& s);
};

/// The classes the shipped kernels are certified over: the fig05
/// profile shapes, the fig05 dense GEMM operands, and the fig17 DLMC
/// sweep grid per vector width.  All extents are multiples of 64, as
/// the bench suites generate them.
std::vector<ShapeClass> builtin_shape_classes();

}  // namespace vsparse::verify

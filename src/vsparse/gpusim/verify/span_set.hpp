// Exact overlap test between two span descriptors.
//
// A SpanRef is the address footprint of one span op in the engine's
// descriptor vocabulary (warp_ops.hpp): `segs` segments of `width`
// lanes, lane t of segment s covering
//
//   [seg_base[s] + t*stride, seg_base[s] + t*stride + access)
//
// for every active lane (bit s*width + t of `mask`).  The test is
// exact, not a hull approximation: the hull pre-filter rejects the
// common disjoint case in O(segs_a * segs_b), and only hull-colliding
// segment pairs fall through to the per-lane interval walk (bounded by
// 32 x 32 lane pairs).
//
// Both static verification (shared-memory race freedom between barrier
// epochs) and the dynamic sanitizer's racecheck fast path (PR 10)
// consume this primitive, so the two agree by construction on which
// span pairs are disjoint.
#pragma once

#include <cstdint>

namespace vsparse::verify {

struct SpanRef {
  const std::uint64_t* seg_base = nullptr;  ///< byte address of lane 0, per seg
  int segs = 0;
  int width = 0;                ///< lanes per segment
  std::uint64_t stride = 0;     ///< bytes between consecutive lanes
  std::uint32_t access = 0;     ///< bytes accessed per lane
  std::uint32_t mask = 0;       ///< active lanes (bit seg*width + t)
};

/// Exact: true iff some active byte of `a` is also an active byte of `b`.
bool spans_overlap(const SpanRef& a, const SpanRef& b);

}  // namespace vsparse::verify

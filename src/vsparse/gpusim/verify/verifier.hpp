// Static launch verifier driver — corner enumeration over a shape
// class, one CtaModel run per corner.
//
// verify_kernel proves or refutes one (kernel, shape class,
// architecture) triple: it replays the kernel's static contract
// (kernels/contracts.cpp) at every corner of the class (the extreme
// shapes that bound all members — shape_class.hpp) and folds the
// per-corner outcomes into one Verdict:
//
//   kProved    every corner ran clean (or was rejected by the kernel's
//              own preconditions before touching memory);
//   kRefuted   some corner produced a violation — the verdict carries
//              that concrete counterexample shape and the failing site;
//   kUnknown   the contract declared an approximation (or the desc has
//              no contract) — the dynamic sanitizer stays authoritative
//              for this pair.
//
// A class whose every corner is precondition-rejected is still proved:
// "rejects before launching" is safe for the whole class because the
// preconditions are divisibility/membership predicates evaluated on
// the concrete shape, not on memory.
#pragma once

#include <string>
#include <vector>

#include "vsparse/gpusim/verify/machine.hpp"
#include "vsparse/gpusim/verify/shape_class.hpp"
#include "vsparse/kernels/registry.hpp"

namespace vsparse::gpusim {
struct DeviceConfig;
}  // namespace vsparse::gpusim

namespace vsparse::verify {

enum class VerdictKind : std::uint8_t { kProved, kRefuted, kUnknown };

/// "proved" | "refuted" | "unknown" (stable certificate vocabulary).
const char* verdict_name(VerdictKind kind);
/// Inverse of verdict_name; false when `name` is not a verdict.
bool parse_verdict(std::string_view name, VerdictKind* out);

struct Verdict {
  VerdictKind kind = VerdictKind::kUnknown;
  /// The refuting concrete shape (kRefuted only).
  ShapeCorner counterexample;
  /// Failing op site (kRefuted) or approximation site (kUnknown).
  std::string site;
  std::string detail;
  int corners_checked = 0;
  int corners_rejected = 0;  ///< safe-by-precondition corners

  bool proved() const { return kind == VerdictKind::kProved; }
  bool refuted() const { return kind == VerdictKind::kRefuted; }
};

/// Verify one kernel contract over one shape class on one architecture.
/// Lint findings accumulate into `*lints` (deduplicated per run) when
/// non-null; linting never affects the verdict.
Verdict verify_kernel(kernels::ContractFn contract, const ShapeClass& cls,
                      const gpusim::DeviceConfig& hw,
                      std::vector<LintFinding>* lints = nullptr);

/// Kernels certified alongside the registry: the dense GEMM entry
/// points and the softmax kernels the fig05 suites run, which have no
/// KernelDesc but the same safety obligations.
struct ExtraContract {
  const char* name;
  kernels::ContractFn contract;
};
const std::vector<ExtraContract>& extra_contracts();

}  // namespace vsparse::verify

#include "vsparse/gpusim/verify/verifier.hpp"

#include <string_view>
#include <utility>

#include "vsparse/gpusim/config.hpp"
#include "vsparse/kernels/contracts.hpp"

namespace vsparse::verify {

const char* verdict_name(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::kProved:
      return "proved";
    case VerdictKind::kRefuted:
      return "refuted";
    case VerdictKind::kUnknown:
      return "unknown";
  }
  return "unknown";
}

bool parse_verdict(std::string_view name, VerdictKind* out) {
  if (name == "proved") {
    *out = VerdictKind::kProved;
  } else if (name == "refuted") {
    *out = VerdictKind::kRefuted;
  } else if (name == "unknown") {
    *out = VerdictKind::kUnknown;
  } else {
    return false;
  }
  return true;
}

Verdict verify_kernel(kernels::ContractFn contract, const ShapeClass& cls,
                      const gpusim::DeviceConfig& hw,
                      std::vector<LintFinding>* lints) {
  Verdict verdict;
  if (contract == nullptr) {
    verdict.kind = VerdictKind::kUnknown;
    verdict.site = "verify.contract";
    verdict.detail = "no static contract registered";
    return verdict;
  }
  verdict.kind = VerdictKind::kProved;
  for (const ShapeCorner& corner : cls.corners()) {
    CtaModel m;
    contract(m, corner, hw);
    ++verdict.corners_checked;
    if (lints != nullptr) {
      for (const LintFinding& f : m.lints()) {
        bool seen = false;
        for (const LintFinding& g : *lints) {
          if (g.rule == f.rule && g.site == f.site) {
            seen = true;
            break;
          }
        }
        if (!seen) lints->push_back(f);
      }
    }
    if (m.rejected()) {
      ++verdict.corners_rejected;
      continue;  // kernel preconditions reject the shape before launch
    }
    if (!m.violations().empty()) {
      verdict.kind = VerdictKind::kRefuted;
      verdict.counterexample = corner;
      verdict.site = m.violations().front().site;
      verdict.detail = m.violations().front().detail;
      return verdict;  // first counterexample wins
    }
    if (m.unknown() && verdict.kind == VerdictKind::kProved) {
      verdict.kind = VerdictKind::kUnknown;
      verdict.site = "verify.approximate";
      verdict.detail = m.unknown_why();
    }
  }
  return verdict;
}

const std::vector<ExtraContract>& extra_contracts() {
  static const std::vector<ExtraContract> kExtras = {
      {"hgemm_tcu", &kernels::contracts::spmm_dense_gemm},
      {"sgemm_fpu", &kernels::contracts::sgemm_fpu},
      {"sparse_softmax", &kernels::contracts::sparse_softmax},
      {"dense_softmax", &kernels::contracts::dense_softmax},
  };
  return kExtras;
}

}  // namespace vsparse::verify

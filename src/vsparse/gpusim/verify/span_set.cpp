#include "vsparse/gpusim/verify/span_set.hpp"

namespace vsparse::verify {

namespace {

struct SegFoot {
  std::uint64_t lo = 0;  ///< first byte
  std::uint64_t hi = 0;  ///< one past last byte
  int t_lo = 0, t_hi = 0;
  bool any = false;
};

SegFoot seg_footprint(const SpanRef& s, int seg) {
  SegFoot f;
  int t_lo = -1, t_hi = -1;
  for (int t = 0; t < s.width; ++t) {
    if (s.mask & (1u << (seg * s.width + t))) {
      if (t_lo < 0) t_lo = t;
      t_hi = t;
    }
  }
  if (t_lo < 0) return f;
  f.any = true;
  f.t_lo = t_lo;
  f.t_hi = t_hi;
  f.lo = s.seg_base[seg] + static_cast<std::uint64_t>(t_lo) * s.stride;
  f.hi = s.seg_base[seg] + static_cast<std::uint64_t>(t_hi) * s.stride +
         s.access;
  return f;
}

bool lanes_overlap(const SpanRef& a, int sa, const SegFoot& fa,
                   const SpanRef& b, int sb, const SegFoot& fb) {
  for (int ta = fa.t_lo; ta <= fa.t_hi; ++ta) {
    if (!(a.mask & (1u << (sa * a.width + ta)))) continue;
    const std::uint64_t a_lo =
        a.seg_base[sa] + static_cast<std::uint64_t>(ta) * a.stride;
    const std::uint64_t a_hi = a_lo + a.access;
    for (int tb = fb.t_lo; tb <= fb.t_hi; ++tb) {
      if (!(b.mask & (1u << (sb * b.width + tb)))) continue;
      const std::uint64_t b_lo =
          b.seg_base[sb] + static_cast<std::uint64_t>(tb) * b.stride;
      if (a_lo < b_lo + b.access && b_lo < a_hi) return true;
    }
  }
  return false;
}

}  // namespace

bool spans_overlap(const SpanRef& a, const SpanRef& b) {
  if (a.segs <= 0 || b.segs <= 0 || a.mask == 0 || b.mask == 0) return false;
  for (int sa = 0; sa < a.segs; ++sa) {
    const SegFoot fa = seg_footprint(a, sa);
    if (!fa.any) continue;
    for (int sb = 0; sb < b.segs; ++sb) {
      const SegFoot fb = seg_footprint(b, sb);
      if (!fb.any) continue;
      if (fa.hi <= fb.lo || fb.hi <= fa.lo) continue;  // hulls disjoint
      if (lanes_overlap(a, sa, fa, b, sb, fb)) return true;
    }
  }
  return false;
}

}  // namespace vsparse::verify

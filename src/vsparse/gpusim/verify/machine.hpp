// The abstract CTA the static launch verifier executes kernel
// contracts on.
//
// A contract (kernels/contracts.cpp) replays the address behaviour of
// one representative CTA of its kernel against a CtaModel instead of a
// Device: it declares the global buffers the launch binds (with their
// tail-slack contracts), then issues the same span descriptors the
// kernel's warps issue — with data-dependent values (gather columns,
// row-pointer offsets, staged counts) as intervals rather than loaded
// data.  The model checks, eagerly at each op:
//
//   bounds        every active lane's [addr, addr+access) within the
//                 buffer (loads may extend into declared tail slack —
//                 recorded as a lint finding, not a violation);
//   predication   residue lanes are implied by bounds: an unpredicated
//                 lane at a corner shape lands out of bounds;
//   races         shared-memory spans from different warps in the same
//                 barrier epoch must be disjoint (exact test via
//                 spans_overlap) when either writes;
//   barriers      cta-wide sync() after any warp declared an early
//                 exit (skip_rest) is a divergence violation.
//
// Violations accumulate with the op's site label; the verifier turns
// the first violation at a corner into a `refuted` verdict carrying
// that corner as the concrete counterexample.  approximate() declares
// that the contract cannot model some behaviour exactly, downgrading
// the verdict to `unknown` (dynamic sanitizer stays authoritative).
//
// The model also runs the lint pass as it goes (vsparse-lint-v1):
//   per-lane-span        a per-lane loop whose declared pattern is
//                        (segmented-)affine — expressible as a span;
//   slack-dependent-tail a load that is in bounds only through the
//                        buffer's tail slack (missing residue
//                        predication made safe by the PR 5 contracts);
//   span-self-divert     a shared-memory span whose conservative hull
//                        pre-scan fails while its active lanes are in
//                        bounds — the engine executes it per-lane;
//   descriptor-invalid   a descriptor violating the engine's DCHECKed
//                        validity rules (also a violation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vsparse/gpusim/verify/interval.hpp"
#include "vsparse/gpusim/verify/span_set.hpp"

namespace vsparse::verify {

/// Declared address pattern of a per-lane loop (lint classification).
enum class SpanPattern : std::uint8_t {
  kAffine,     ///< lane addresses affine in the lane id
  kSegmented,  ///< affine within segments of equal width
  kGather,     ///< data-dependent bases (not expressible as one span)
  kIrregular,  ///< genuinely divergent
};

struct LintFinding {
  std::string rule;
  std::string site;
  std::string detail;
};

struct Violation {
  std::string site;
  std::string detail;
};

/// Prefix mask of the low `lanes` lanes.
inline std::uint32_t prefix_mask(int lanes) {
  if (lanes <= 0) return 0;
  if (lanes >= 32) return 0xFFFFFFFFu;
  return (1u << lanes) - 1u;
}

class CtaModel {
 public:
  CtaModel() = default;

  /// Representative-CTA geometry: warp count and the launch's
  /// shared-memory allocation.
  void launch(int warps, std::int64_t smem_bytes);

  /// Declare a global buffer binding; returns its handle.  `slack` is
  /// the tail-slack the allocation declares (Device::alloc).
  int gbuf(const std::string& name, std::int64_t bytes,
           std::int64_t slack = 0);

  /// Kernel precondition (mirrors a VSPARSE_CHECK at launch): when
  /// false the kernel rejects the shape before touching memory — the
  /// corner is safe-by-rejection, and the contract must return.
  bool require(bool ok, const char* site, const std::string& detail);

  /// The contract cannot model this behaviour exactly — verdict
  /// becomes `unknown`.
  void approximate(const char* site, const std::string& why);

  /// Contract-declared lint finding (e.g. a per-lane loop the contract
  /// models as exact spans but the kernel executes element-wise).
  /// Deduplicated by (rule, site) like the model's own findings.
  void note_lint(const char* rule, const char* site, std::string detail) {
    lint(rule, site, std::move(detail));
  }

  // ---- global span ops (bases are byte offsets into `buf`) ---------
  void ldg(int buf, const std::vector<Ival>& seg_bases, int width,
           std::int64_t stride, int access, std::uint32_t mask,
           const char* site);
  void stg(int buf, const std::vector<Ival>& seg_bases, int width,
           std::int64_t stride, int access, std::uint32_t mask,
           const char* site);
  /// Single-segment convenience.
  void ldg1(int buf, Ival base, std::int64_t stride, int access,
            std::uint32_t mask, const char* site) {
    ldg(buf, {base}, 32, stride, access, mask, site);
  }
  void stg1(int buf, Ival base, std::int64_t stride, int access,
            std::uint32_t mask, const char* site) {
    stg(buf, {base}, 32, stride, access, mask, site);
  }

  /// Per-lane global loop: footprint hull [lo, hi) bytes into `buf`,
  /// with the loop's declared pattern for the lint pass.
  void ldg_lanes(int buf, Ival lo, Ival hi, SpanPattern pattern,
                 const char* site);
  void stg_lanes(int buf, Ival lo, Ival hi, SpanPattern pattern,
                 const char* site);

  // ---- shared-memory span ops (concrete byte offsets) --------------
  void sts(int warp, const std::vector<std::int64_t>& seg_bases, int width,
           std::int64_t stride, int access, std::uint32_t mask,
           const char* site);
  void lds(int warp, const std::vector<std::int64_t>& seg_bases, int width,
           std::int64_t stride, int access, std::uint32_t mask,
           const char* site);
  /// Per-lane shared-memory loop (footprint hull, lint pattern).
  void lds_lanes(int warp, std::int64_t lo, std::int64_t hi,
                 SpanPattern pattern, const char* site);
  void sts_lanes(int warp, std::int64_t lo, std::int64_t hi,
                 SpanPattern pattern, const char* site);

  // ---- control flow ------------------------------------------------
  /// CTA-wide barrier: all live warps arrive; a sync while some warp
  /// has exited early is a barrier-divergence violation.
  void sync();
  /// Warp `warp` exits the kernel body early (divergent return).
  void skip_rest(int warp);
  /// End-of-CTA: final epoch race audit.
  void finish();

  // ---- results -----------------------------------------------------
  bool rejected() const { return rejected_; }
  bool unknown() const { return unknown_; }
  const std::string& unknown_why() const { return unknown_why_; }
  const std::vector<Violation>& violations() const { return violations_; }
  const std::vector<LintFinding>& lints() const { return lints_; }

 private:
  struct Gbuf {
    std::string name;
    std::int64_t bytes = 0;
    std::int64_t slack = 0;
  };
  struct SmemRec {
    int warp = 0;
    int epoch = 0;
    bool is_store = false;
    std::vector<std::uint64_t> seg_base;
    int width = 0;
    std::int64_t stride = 0;
    int access = 0;
    std::uint32_t mask = 0;
    std::string site;
  };

  void violate(const char* site, std::string detail);
  void lint(const char* rule, const char* site, std::string detail);
  bool check_descriptor(int segs, int width, std::int64_t stride, int access,
                        std::uint32_t mask, const char* site);
  void check_global(int buf, const std::vector<Ival>& seg_bases, int width,
                    std::int64_t stride, int access, std::uint32_t mask,
                    const char* site, bool is_store);
  void smem_op(int warp, const std::vector<std::int64_t>& seg_bases,
               int width, std::int64_t stride, int access, std::uint32_t mask,
               const char* site, bool is_store);

  int warps_ = 1;
  std::int64_t smem_bytes_ = 0;
  int epoch_ = 0;
  std::vector<bool> warp_exited_;
  std::vector<Gbuf> gbufs_;
  std::vector<SmemRec> smem_log_;  ///< current epoch only
  std::vector<Violation> violations_;
  std::vector<LintFinding> lints_;
  bool rejected_ = false;
  bool unknown_ = false;
  std::string unknown_why_;
};

}  // namespace vsparse::verify

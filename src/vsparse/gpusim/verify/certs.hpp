// Versioned certificate store for static launch verdicts
// (`vsparse-static-v1`) — the persisted output of the verifier,
// consulted O(1) at dispatch and fleet admission.
//
// One CertEntry records the verdict for a (kernel, shape class,
// architecture preset) triple; the store keys entries by
// "kernel|arch" and scans the handful of classes under that key for
// containment (a map probe plus a short fixed-size scan — O(1) per
// lookup, like the policy cache's shape-class buckets).
//
// The JSON artifact round-trips through the same external-artifact
// guardrails as the policy cache: strict recursive-descent parse,
// version pin, size caps checked before any allocation, structured
// kBadDispatch raises at site "gpusim.verify.certs".  The CI
// static-verify job regenerates the artifact from scratch every run
// and cross-checks `proved` entries against the dynamic sanitizer;
// the store never mutates a loaded artifact in place.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "vsparse/gpusim/verify/shape_class.hpp"
#include "vsparse/gpusim/verify/verifier.hpp"

namespace vsparse::verify {

inline constexpr const char* kCertStoreVersion = "vsparse-static-v1";
inline constexpr std::uint64_t kMaxCertStoreBytes = 16ull << 20;
inline constexpr std::size_t kMaxCertStoreEntries = 65536;
inline constexpr std::size_t kMaxCertStringLength = 512;

/// One certified (kernel, shape class, arch) verdict.
struct CertEntry {
  std::string kernel;  ///< stable registry name ("spmm_octet")
  std::string arch;    ///< arch preset name ("volta-v100")
  ShapeClass cls;
  VerdictKind verdict = VerdictKind::kUnknown;
  ShapeCorner counterexample;  ///< meaningful for kRefuted only
  std::string site;            ///< failing / approximated op site
  std::string detail;
  int corners_checked = 0;
  int corners_rejected = 0;
};

class CertStore {
 public:
  CertStore() = default;

  /// Record (replacing any entry for the same kernel/arch/class name).
  void put(CertEntry entry);

  /// The verdict covering `shape` for (kernel, arch); nullptr when no
  /// certified class contains the shape (treat as unknown).  When
  /// multiple classes contain the shape, a refuted entry wins (safety
  /// verdicts must not depend on class enumeration order), then
  /// unknown, then proved.
  const CertEntry* lookup(std::string_view kernel, std::string_view arch,
                          const ShapeCorner& shape) const;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// All entries, sorted by (kernel, arch, class name) — the
  /// serialization order.
  std::vector<const CertEntry*> sorted_entries() const;

  std::string to_json() const;
  static CertStore from_json(std::string_view text);
  void save(const std::string& path) const;
  static CertStore load(const std::string& path);

 private:
  // "kernel|arch" -> that pair's certified classes (a handful each).
  std::unordered_map<std::string, std::vector<CertEntry>> entries_;
  std::size_t count_ = 0;
};

}  // namespace vsparse::verify

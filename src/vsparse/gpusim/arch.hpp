// Named architecture presets — the table behind DeviceConfig::preset().
//
// The paper evaluates one platform (Volta V100, HMMA.884); "which
// tensor-core kernel wins" is a function of the MMA shape and the
// cache/bandwidth ratios, so cross-architecture studies and the
// dispatch policy cache need architectures as first-class, *named*
// points rather than ad-hoc hand-edited DeviceConfigs.  Every entry
// carries a stable name (the policy-cache key), a one-line summary for
// CLIs, and a factory returning the full DeviceConfig.
//
// The table ships four points:
//   volta-v100         the paper's platform (defaults; HMMA.884)
//   turing-t4          smaller SM array / L2, mma.m16n8k8 metadata
//   ampere-a100        bigger L2, 2x TCU rate, mma.m16n8k16 metadata
//   volta-hmma-switch  V100 + the Fig. 15 HMMA...SWITCH extension: the
//                      SDDMM octet kernel's inverted-pattern fix costs
//                      nothing, so kAuto picks the "mma (arch)" variant
//                      — the paper's proposal as one architecture point
#pragma once

#include <string_view>
#include <vector>

#include "vsparse/gpusim/config.hpp"

namespace vsparse::gpusim {

struct ArchPreset {
  const char* name;     ///< stable id; DeviceConfig::arch of the result
  const char* summary;  ///< one-line description for --arch=help output
  DeviceConfig (*make)();
};

/// The preset table, in documentation order.
const std::vector<ArchPreset>& arch_presets();

/// Preset by name; nullptr when unknown.
const ArchPreset* find_arch_preset(std::string_view name);

/// Comma-joined preset names ("volta-v100, turing-t4, ...") for error
/// messages and --help text.
std::string arch_preset_names();

}  // namespace vsparse::gpusim

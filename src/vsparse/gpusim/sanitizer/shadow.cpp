#include "vsparse/gpusim/sanitizer/shadow.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "vsparse/gpusim/trace/trace.hpp"

namespace vsparse::gpusim {

SmSanitizer::SmSanitizer(int sm_id, const SanitizerOptions& opts,
                         const std::vector<AllocRecord>* allocs,
                         std::size_t smem_bytes)
    : sm_id_(sm_id),
      opts_(opts),
      allocs_(allocs),
      smem_bytes_(smem_bytes),
      shadow_(smem_bytes) {}

void SmSanitizer::on_cta_begin(int cta_id, int num_warps) {
  if (gen_ == UINT32_MAX) {
    // Generation wrap (4B CTAs on one SM): hard-clear so stale records
    // cannot alias the restarted counter.
    std::fill(shadow_.begin(), shadow_.end(), ByteShadow{});
    gen_ = 0;
  }
  ++gen_;
  cta_id_ = cta_id;
  cta_op_ = 0;
  arrivals_.assign(static_cast<std::size_t>(num_warps), 0);
  span_log_.clear();
  materialized_ = 0;
}

void SmSanitizer::on_cta_end() {
  if (!opts_.sync || arrivals_.empty()) return;
  const auto [min_it, max_it] =
      std::minmax_element(arrivals_.begin(), arrivals_.end());
  if (*min_it == *max_it) return;
  SanitizerReport r;
  r.kind = HazardKind::kBarrierMismatch;
  r.epoch = *max_it;
  r.first = HazardSite{
      static_cast<std::int32_t>(max_it - arrivals_.begin()), Op::kBar, 0};
  r.second = HazardSite{
      static_cast<std::int32_t>(min_it - arrivals_.begin()), Op::kBar, 0};
  std::ostringstream os;
  os << "warps left the CTA with unequal barrier counts: warp "
     << r.first.warp << " arrived " << *max_it << "x, warp " << r.second.warp
     << " arrived " << *min_it << 'x';
  r.detail = os.str();
  deliver(std::move(r));
}

void SmSanitizer::on_cta_sync() {
  ++cta_op_;
  for (std::uint32_t& a : arrivals_) ++a;
}

void SmSanitizer::on_bar_arrive(int warp, std::uint32_t mask) {
  const std::uint64_t site = ++cta_op_;
  const auto w = static_cast<std::size_t>(warp);
  if (w >= arrivals_.size()) return;  // engine guards this; stay safe
  if (opts_.sync && mask != kFullMask) {
    SanitizerReport r;
    r.kind = HazardKind::kDivergentBarrier;
    r.epoch = arrivals_[w];
    r.second = HazardSite{warp, Op::kBar, site};
    std::ostringstream os;
    os << "bar_sync executed under partial lane mask 0x" << std::hex << mask;
    r.detail = os.str();
    deliver(std::move(r));
  }
  ++arrivals_[w];
}

namespace {

/// First-offending-byte aggregation for one warp op: a single op that
/// touches many bad bytes yields one report per hazard kind.
struct Agg {
  bool hit = false;
  std::uint64_t addr = 0;
  std::uint32_t count = 0;
  HazardSite first;

  void note(std::uint64_t a, const HazardSite& site) {
    if (!hit) {
      hit = true;
      addr = a;
      first = site;
    }
    ++count;
  }
};

/// Active lanes of segment `seg` as a width-bit mask (the span ops'
/// detail::span_seg_mask, restated here to keep this a leaf of the
/// engine headers).
std::uint32_t seg_mask_of(std::uint32_t mask, int seg, int width) {
  if (width >= 32) return mask;
  return (mask >> (seg * width)) & ((1u << width) - 1u);
}

}  // namespace

bool SmSanitizer::on_smem_load_span(int warp, const std::uint32_t* seg_off,
                                    int segs, int width, std::uint32_t stride,
                                    std::uint32_t mask, std::uint32_t len) {
  return admit_span(warp, seg_off, segs, width, stride, mask, len,
                    /*write=*/false);
}

bool SmSanitizer::on_smem_store_span(int warp, const std::uint32_t* seg_off,
                                     int segs, int width, std::uint32_t stride,
                                     std::uint32_t mask, std::uint32_t len) {
  return admit_span(warp, seg_off, segs, width, stride, mask, len,
                    /*write=*/true);
}

bool SmSanitizer::admit_span(int warp, const std::uint32_t* seg_off, int segs,
                             int width, std::uint32_t stride,
                             std::uint32_t mask, std::uint32_t len,
                             bool write) {
  if (!opts_.span_fastpath || opts_.init) return false;
  // The per-lane op returns before its hook on an empty mask, so a
  // handled empty span must not consume an op-stream slot either.
  if (mask == 0) return true;
  // Bounds: any out-of-bounds lane falls back so the per-lane path
  // reports the exact offending offset (and throws identically).
  for (int seg = 0; seg < segs; ++seg) {
    const std::uint32_t sm = seg_mask_of(mask, seg, width);
    if (sm == 0) continue;
    const int hi = 31 - std::countl_zero(sm);
    if (static_cast<std::uint64_t>(seg_off[seg]) +
            static_cast<std::uint64_t>(hi) * stride + len >
        smem_bytes_) {
      return false;
    }
  }
  const std::uint32_t epoch =
      static_cast<std::size_t>(warp) < arrivals_.size()
          ? arrivals_[static_cast<std::size_t>(warp)]
          : 0;
  SpanRecord rec;
  rec.seg_off.reserve(static_cast<std::size_t>(segs));
  for (int seg = 0; seg < segs; ++seg) rec.seg_off.push_back(seg_off[seg]);
  rec.width = width;
  rec.stride = stride;
  rec.access = len;
  rec.mask = mask;
  rec.epoch = epoch;
  rec.warp = static_cast<std::int16_t>(warp);
  rec.write = write;
  if (opts_.race) {
    const verify::SpanRef mine = rec.ref();
    for (const SpanRecord& e : span_log_) {
      if (e.warp == warp || e.epoch != epoch) continue;
      if (!e.write && !write) continue;
      if (verify::spans_overlap(mine, e.ref())) return false;
    }
  }
  rec.site = ++cta_op_;
  span_log_.push_back(std::move(rec));
  ++span_fastpath_ops_;
  return true;
}

void SmSanitizer::materialize() {
  for (; materialized_ < span_log_.size(); ++materialized_) {
    const SpanRecord& e = span_log_[materialized_];
    if (e.hull) continue;
    const int segs = static_cast<int>(e.seg_off.size());
    for (int seg = 0; seg < segs; ++seg) {
      const std::uint32_t sm = seg_mask_of(e.mask, seg, e.width);
      for (std::uint32_t m = sm; m != 0; m &= m - 1) {
        const std::uint64_t o =
            e.seg_off[static_cast<std::size_t>(seg)] +
            static_cast<std::uint64_t>(std::countr_zero(m)) * e.stride;
        for (std::uint64_t b = o; b < o + e.access; ++b) {
          ByteShadow& sh = fresh(static_cast<std::uint32_t>(b));
          if (e.write) {
            sh.w_warp = e.warp;
            sh.w_epoch = e.epoch;
            sh.w_site = e.site;
            sh.w_op = Op::kSts;
          } else {
            sh.r_warp = e.warp;
            sh.r_epoch = e.epoch;
            sh.r_site = e.site;
            sh.r_op = Op::kLds;
          }
        }
      }
    }
  }
}

void SmSanitizer::log_hull(int warp, bool write, std::uint32_t epoch,
                           std::uint64_t site, std::uint64_t lo,
                           std::uint64_t hi_end) {
  if (!opts_.span_fastpath || opts_.init || !opts_.race) return;
  if (hi_end <= lo) return;  // no in-bounds byte touched
  SpanRecord rec;
  rec.seg_off.push_back(lo);
  rec.width = 1;
  rec.stride = 0;
  rec.access = static_cast<std::uint32_t>(hi_end - lo);
  rec.mask = 1;
  rec.epoch = epoch;
  rec.site = site;
  rec.warp = static_cast<std::int16_t>(warp);
  rec.write = write;
  rec.hull = true;
  span_log_.push_back(std::move(rec));
  // Its bytes are already in the shadow; never replay the hull.
  if (materialized_ == span_log_.size() - 1) ++materialized_;
}

void SmSanitizer::on_smem_load(int warp, const Lanes<std::uint32_t>& off,
                               std::uint32_t mask, std::uint32_t len) {
  materialize();
  const std::uint64_t site = ++cta_op_;
  const std::uint32_t epoch =
      static_cast<std::size_t>(warp) < arrivals_.size()
          ? arrivals_[static_cast<std::size_t>(warp)]
          : 0;
  Agg oob, uninit, raw;
  std::uint64_t hull_lo = smem_bytes_, hull_end = 0;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t o = off[static_cast<std::size_t>(lane)];
    if (o + len > smem_bytes_) {
      oob.note(o, HazardSite{});
      continue;
    }
    hull_lo = std::min(hull_lo, o);
    hull_end = std::max(hull_end, o + len);
    for (std::uint64_t b = o; b < o + len; ++b) {
      ByteShadow& sh = shadow_[b];
      const bool this_cta = sh.gen == gen_;
      if (!this_cta || sh.w_warp < 0) {
        uninit.note(b, HazardSite{});
      } else if (sh.w_warp != warp && sh.w_epoch == epoch) {
        raw.note(b, HazardSite{sh.w_warp, sh.w_op, sh.w_site});
      }
      if (!this_cta) {
        sh = ByteShadow{};
        sh.gen = gen_;
      }
      sh.r_warp = static_cast<std::int16_t>(warp);
      sh.r_epoch = epoch;
      sh.r_site = site;
      sh.r_op = Op::kLds;
    }
  }
  log_hull(warp, /*write=*/false, epoch, site, hull_lo, hull_end);
  const HazardSite reader{warp, Op::kLds, site};
  if (oob.hit && opts_.bounds) {
    SanitizerReport r;
    r.kind = HazardKind::kSmemOob;
    r.addr = oob.addr;
    r.bytes = oob.count;
    r.epoch = epoch;
    r.second = reader;
    std::ostringstream os;
    os << "lds." << len * 8 << " at offset " << oob.addr
       << " exceeds smem_bytes=" << smem_bytes_;
    r.detail = os.str();
    deliver(std::move(r));
  }
  if (uninit.hit && opts_.init) {
    SanitizerReport r;
    r.kind = HazardKind::kUninitSmemRead;
    r.addr = uninit.addr;
    r.bytes = uninit.count;
    r.epoch = epoch;
    r.second = reader;
    std::ostringstream os;
    os << uninit.count << "B read that no sts wrote this CTA";
    r.detail = os.str();
    deliver(std::move(r));
  }
  if (raw.hit && opts_.race) {
    SanitizerReport r;
    r.kind = HazardKind::kRawRace;
    r.addr = raw.addr;
    r.bytes = raw.count;
    r.epoch = epoch;
    r.first = raw.first;
    r.second = reader;
    std::ostringstream os;
    os << "lds overlaps an sts from warp " << raw.first.warp
       << " in the same barrier epoch " << epoch;
    r.detail = os.str();
    deliver(std::move(r));
  }
}

void SmSanitizer::on_smem_store(int warp, const Lanes<std::uint32_t>& off,
                                std::uint32_t mask, std::uint32_t len) {
  materialize();
  const std::uint64_t site = ++cta_op_;
  const std::uint32_t epoch =
      static_cast<std::size_t>(warp) < arrivals_.size()
          ? arrivals_[static_cast<std::size_t>(warp)]
          : 0;
  Agg oob, waw, war;
  std::uint64_t hull_lo = smem_bytes_, hull_end = 0;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t o = off[static_cast<std::size_t>(lane)];
    if (o + len > smem_bytes_) {
      oob.note(o, HazardSite{});
      continue;
    }
    hull_lo = std::min(hull_lo, o);
    hull_end = std::max(hull_end, o + len);
    for (std::uint64_t b = o; b < o + len; ++b) {
      ByteShadow& sh = shadow_[b];
      const bool this_cta = sh.gen == gen_;
      if (this_cta && sh.w_warp >= 0 && sh.w_warp != warp &&
          sh.w_epoch == epoch) {
        waw.note(b, HazardSite{sh.w_warp, sh.w_op, sh.w_site});
      }
      if (this_cta && sh.r_warp >= 0 && sh.r_warp != warp &&
          sh.r_epoch == epoch) {
        war.note(b, HazardSite{sh.r_warp, sh.r_op, sh.r_site});
      }
      if (!this_cta) {
        sh = ByteShadow{};
        sh.gen = gen_;
      }
      sh.w_warp = static_cast<std::int16_t>(warp);
      sh.w_epoch = epoch;
      sh.w_site = site;
      sh.w_op = Op::kSts;
    }
  }
  log_hull(warp, /*write=*/true, epoch, site, hull_lo, hull_end);
  const HazardSite writer{warp, Op::kSts, site};
  if (oob.hit && opts_.bounds) {
    SanitizerReport r;
    r.kind = HazardKind::kSmemOob;
    r.addr = oob.addr;
    r.bytes = oob.count;
    r.epoch = epoch;
    r.second = writer;
    std::ostringstream os;
    os << "sts." << len * 8 << " at offset " << oob.addr
       << " exceeds smem_bytes=" << smem_bytes_;
    r.detail = os.str();
    deliver(std::move(r));
  }
  if (waw.hit && opts_.race) {
    SanitizerReport r;
    r.kind = HazardKind::kWawRace;
    r.addr = waw.addr;
    r.bytes = waw.count;
    r.epoch = epoch;
    r.first = waw.first;
    r.second = writer;
    std::ostringstream os;
    os << "sts overwrites an sts from warp " << waw.first.warp
       << " in the same barrier epoch " << epoch;
    r.detail = os.str();
    deliver(std::move(r));
  }
  if (war.hit && opts_.race) {
    SanitizerReport r;
    r.kind = HazardKind::kWarRace;
    r.addr = war.addr;
    r.bytes = war.count;
    r.epoch = epoch;
    r.first = war.first;
    r.second = writer;
    std::ostringstream os;
    os << "sts overwrites bytes warp " << war.first.warp
       << " read in the same barrier epoch " << epoch;
    r.detail = os.str();
    deliver(std::move(r));
  }
}

void SmSanitizer::on_global_load(int warp, const AddrLanes& addr,
                                 std::uint32_t mask, std::uint32_t len) {
  ++cta_op_;
  if (opts_.bounds || opts_.init) check_global(warp, addr, mask, len, Op::kLdg);
}

void SmSanitizer::on_global_store(int warp, const AddrLanes& addr,
                                  std::uint32_t mask, std::uint32_t len) {
  ++cta_op_;
  if (opts_.bounds || opts_.init) check_global(warp, addr, mask, len, Op::kStg);
}

const AllocRecord* SmSanitizer::find_alloc(std::uint64_t addr) const {
  const std::vector<AllocRecord>& a = *allocs_;
  auto it = std::upper_bound(
      a.begin(), a.end(), addr,
      [](std::uint64_t v, const AllocRecord& rec) { return v < rec.addr; });
  if (it == a.begin()) return nullptr;
  return &*std::prev(it);
}

void SmSanitizer::check_global(int warp, const AddrLanes& addr,
                               std::uint32_t mask, std::uint32_t len, Op op) {
  const std::uint32_t epoch =
      static_cast<std::size_t>(warp) < arrivals_.size()
          ? arrivals_[static_cast<std::size_t>(warp)]
          : 0;
  Agg oob, uaf;
  const AllocRecord* oob_near = nullptr;
  const AllocRecord* uaf_rec = nullptr;
  for (int lane = 0; lane < 32; ++lane) {
    if (!(mask & (1u << lane))) continue;
    const std::uint64_t a = addr[static_cast<std::size_t>(lane)];
    const AllocRecord* rec = find_alloc(a);
    // `slack` extends what counts as in-bounds (the declared
    // vector-load tail, Device::alloc) without entering the report's
    // [addr, addr+bytes) range.
    if (rec == nullptr || a + len > rec->addr + rec->bytes + rec->slack) {
      if (!oob.hit) oob_near = rec;
      oob.note(a, HazardSite{});
    } else if (!rec->live) {
      if (!uaf.hit) uaf_rec = rec;
      uaf.note(a, HazardSite{});
    }
  }
  const HazardSite site{warp, op, cta_op_};
  if (oob.hit && opts_.bounds) {
    SanitizerReport r;
    r.kind = HazardKind::kGlobalOob;
    r.addr = oob.addr;
    r.bytes = oob.count;
    r.epoch = epoch;
    r.second = site;
    std::ostringstream os;
    os << op_name(op) << '.' << len * 8 << " at device address " << oob.addr
       << " hits no allocation";
    if (oob_near != nullptr) {
      os << "; nearest below: '"
         << (oob_near->name.empty() ? "(unnamed)" : oob_near->name.c_str())
         << "' [" << oob_near->addr << ", " << oob_near->addr + oob_near->bytes
         << ')';
    }
    r.detail = os.str();
    deliver(std::move(r));
  }
  if (uaf.hit && opts_.init) {
    SanitizerReport r;
    r.kind = HazardKind::kGlobalUseAfterFree;
    r.addr = uaf.addr;
    r.bytes = uaf.count;
    r.epoch = epoch;
    r.second = site;
    std::ostringstream os;
    os << op_name(op) << '.' << len * 8 << " inside freed allocation '"
       << (uaf_rec->name.empty() ? "(unnamed)" : uaf_rec->name.c_str())
       << "' [" << uaf_rec->addr << ", " << uaf_rec->addr + uaf_rec->bytes
       << ')';
    r.detail = os.str();
    deliver(std::move(r));
  }
}

void SmSanitizer::deliver(SanitizerReport&& r) {
  r.sm = sm_id_;
  r.cta = cta_id_;
  if (!seen_.insert(key(r)).second) return;
  if (reports_.size() >= opts_.max_reports) {
    ++suppressed_;
    return;
  }
  if (trace_ != nullptr) {
    trace_->emit(TraceEventKind::kSanitizer, cta_id_, r.second.warp,
                 static_cast<std::uint64_t>(r.tool()),
                 static_cast<std::uint64_t>(r.kind));
  }
  reports_.push_back(std::move(r));
}

}  // namespace vsparse::gpusim

// Per-SM hazard detection state: the shadow memory the warp ops feed
// while a sanitized launch runs.
//
// Ownership mirrors SmTrace: the engine creates one SmSanitizer per
// active SM per launch, attaches it to the SmContext, and merges the
// per-SM report lists in SM-id order at launch end.  Each instance is
// only ever touched by the host worker executing that SM's CTA list,
// so there is no synchronization anywhere — and because per-SM CTA
// order is fixed by the scheduler, the report list is bit-identical
// for any host thread count.
//
// Epoch semantics (racecheck).  Warps of a CTA execute phase-by-phase;
// the data a warp may safely consume from another warp is whatever was
// published before the barrier separating their phases.  We count each
// warp's barrier *arrivals*: `Cta::sync()` arrives every warp at once,
// `Warp::bar_sync(mask)` arrives one warp.  Every smem access is
// stamped with its warp's own arrival count — its barrier epoch.  Two
// accesses to the same byte from *different* warps in the *same* epoch,
// at least one a write, were not ordered by any barrier: that is a
// hazard, reported with both op sites.  (A warp is always ordered with
// itself, so same-warp pairs are never hazards.)
//
// Shadow state is generation-stamped: `gen_` bumps at each CTA start,
// and a shadow byte whose `gen` field disagrees is logically empty —
// an O(1) per-CTA clear of what can be a multi-megabyte array.
#pragma once

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/lanes.hpp"
#include "vsparse/gpusim/sanitizer/options.hpp"
#include "vsparse/gpusim/sanitizer/report.hpp"
#include "vsparse/gpusim/stats.hpp"
#include "vsparse/gpusim/verify/span_set.hpp"

namespace vsparse::gpusim {

class SmTrace;

class SmSanitizer {
 public:
  /// `allocs` is the launch-wide allocation snapshot (sorted by
  /// address), shared read-only across SMs; must outlive the launch.
  SmSanitizer(int sm_id, const SanitizerOptions& opts,
              const std::vector<AllocRecord>* allocs,
              std::size_t smem_bytes);

  /// Mirror reports into this SM's trace buffer (optional; engine wires
  /// it when the launch is traced as well as sanitized).
  void set_trace(SmTrace* trace) { trace_ = trace; }

  // -- engine lifecycle hooks -------------------------------------------
  void on_cta_begin(int cta_id, int num_warps);
  void on_cta_end();

  // -- barrier hooks (synccheck + epoch advance) ------------------------
  /// Cta::sync(): every warp arrives together; never divergent.
  void on_cta_sync();
  /// Warp::bar_sync(mask): one warp arrives; a partial mask is a
  /// divergent barrier, and unequal per-warp arrival counts at CTA end
  /// are a barrier mismatch.
  void on_bar_arrive(int warp, std::uint32_t mask);

  // -- memory hooks (racecheck / initcheck / boundscheck) ---------------
  /// `len` = sizeof the per-lane value; offsets/addresses are the same
  /// lane arrays the warp op is about to execute with.
  void on_smem_load(int warp, const Lanes<std::uint32_t>& off,
                    std::uint32_t mask, std::uint32_t len);
  void on_smem_store(int warp, const Lanes<std::uint32_t>& off,
                     std::uint32_t mask, std::uint32_t len);

  // -- span fast path (racecheck x static-verifier overlap) -------------
  /// Admit one smem span op without expanding it: true means the op was
  /// fully handled here (footprint logged, one op-stream slot consumed)
  /// and the caller may run the span memory path; false means the
  /// caller must expand and run the per-lane op, whose hook above then
  /// does the exact per-byte reporting.  Admission requires
  /// opts_.span_fastpath, initcheck off, every active lane in bounds,
  /// and — when racecheck is armed — provable disjointness (via
  /// verify::spans_overlap) from every cross-warp same-epoch access
  /// logged this CTA.
  bool on_smem_load_span(int warp, const std::uint32_t* seg_off, int segs,
                         int width, std::uint32_t stride, std::uint32_t mask,
                         std::uint32_t len);
  bool on_smem_store_span(int warp, const std::uint32_t* seg_off, int segs,
                          int width, std::uint32_t stride, std::uint32_t mask,
                          std::uint32_t len);

  /// Smem span ops admitted on the fast path (no per-byte shadow walk).
  std::uint64_t span_fastpath_ops() const { return span_fastpath_ops_; }
  void on_global_load(int warp, const AddrLanes& addr, std::uint32_t mask,
                      std::uint32_t len);
  void on_global_store(int warp, const AddrLanes& addr, std::uint32_t mask,
                       std::uint32_t len);

  // -- results ----------------------------------------------------------
  const std::vector<SanitizerReport>& reports() const { return reports_; }
  std::uint64_t suppressed() const { return suppressed_; }

  /// Dedup identity of a report: hazard kind, location, and both sites'
  /// (warp, op) — deliberately excluding CTA/SM/epoch so the same bug
  /// repeating across CTAs collapses to one report.  Shared with the
  /// engine's cross-SM merge.
  using Key = std::tuple<std::uint8_t, std::uint64_t, std::int32_t,
                         std::uint8_t, std::int32_t, std::uint8_t>;
  static Key key(const SanitizerReport& r) {
    return {static_cast<std::uint8_t>(r.kind), r.addr, r.first.warp,
            static_cast<std::uint8_t>(r.first.op), r.second.warp,
            static_cast<std::uint8_t>(r.second.op)};
  }

 private:
  /// One byte of shared memory, as the race/init tools see it: the most
  /// recent writer and the most recent reader this CTA, each with their
  /// barrier epoch and op site.  Single-slot per direction — a hazard
  /// against an *older* same-direction access from a third warp can go
  /// unreported, which trades completeness for O(1) state exactly the
  /// way hardware race detectors do.  `gen` ties the record to the
  /// current CTA (see header comment).
  struct ByteShadow {
    std::uint64_t w_site = 0;
    std::uint64_t r_site = 0;
    std::uint32_t gen = 0;
    std::uint32_t w_epoch = 0;
    std::uint32_t r_epoch = 0;
    std::int16_t w_warp = -1;
    std::int16_t r_warp = -1;
    Op w_op = Op::kMisc;
    Op r_op = Op::kMisc;
  };

  /// Stamp `sh` as belonging to the current CTA, clearing it first if
  /// it still carries a previous CTA's state.
  ByteShadow& fresh(std::uint32_t o) {
    ByteShadow& sh = shadow_[o];
    if (sh.gen != gen_) {
      sh = ByteShadow{};
      sh.gen = gen_;
    }
    return sh;
  }

  /// One logged smem access this CTA: a fast-pathed span descriptor
  /// (exact footprint, lazily replayable into the shadow) or the
  /// conservative byte-range hull of a per-lane op (overlap-check only
  /// — its bytes are already in the shadow, so materialize skips it).
  struct SpanRecord {
    std::vector<std::uint64_t> seg_off;
    int width = 0;
    std::uint32_t stride = 0;
    std::uint32_t access = 0;
    std::uint32_t mask = 0;
    std::uint32_t epoch = 0;
    std::uint64_t site = 0;
    std::int16_t warp = -1;
    bool write = false;
    bool hull = false;

    verify::SpanRef ref() const {
      return verify::SpanRef{seg_off.data(), static_cast<int>(seg_off.size()),
                             width, stride, access, mask};
    }
  };

  /// Shared body of the two span hooks.
  bool admit_span(int warp, const std::uint32_t* seg_off, int segs, int width,
                  std::uint32_t stride, std::uint32_t mask, std::uint32_t len,
                  bool write);
  /// Replay every logged-but-unmaterialized span into the byte shadow
  /// (silent: admitted spans are provably hazard-free against all
  /// earlier accesses of this CTA), so a per-lane check that follows
  /// sees exactly the state an all-per-lane execution would have left.
  void materialize();
  /// Log the byte-range hull of a per-lane op so later span admissions
  /// see it (the bytes themselves went straight into the shadow).
  void log_hull(int warp, bool write, std::uint32_t epoch, std::uint64_t site,
                std::uint64_t lo, std::uint64_t hi_end);

  /// Record (dedup'd, capped) and optionally trace-mirror a report.
  void deliver(SanitizerReport&& r);

  /// Largest snapshot entry with base <= addr, or nullptr.
  const AllocRecord* find_alloc(std::uint64_t addr) const;
  void check_global(int warp, const AddrLanes& addr, std::uint32_t mask,
                    std::uint32_t len, Op op);

  int sm_id_;
  SanitizerOptions opts_;
  const std::vector<AllocRecord>* allocs_;
  std::size_t smem_bytes_;
  SmTrace* trace_ = nullptr;

  std::vector<ByteShadow> shadow_;  ///< one per smem byte
  std::uint32_t gen_ = 0;           ///< current CTA generation
  int cta_id_ = -1;
  std::vector<std::uint32_t> arrivals_;  ///< per-warp barrier arrival count
  std::uint64_t cta_op_ = 0;  ///< index into the CTA's sanitized op stream

  std::vector<SpanRecord> span_log_;  ///< this CTA's smem access log
  std::size_t materialized_ = 0;      ///< span_log_ replay cursor
  std::uint64_t span_fastpath_ops_ = 0;

  std::set<Key> seen_;
  std::vector<SanitizerReport> reports_;
  std::uint64_t suppressed_ = 0;
};

}  // namespace vsparse::gpusim

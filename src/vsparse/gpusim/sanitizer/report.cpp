#include "vsparse/gpusim/sanitizer/report.hpp"

#include <array>
#include <cstdio>
#include <sstream>

namespace vsparse::gpusim {

const char* sanitizer_tool_name(SanitizerTool tool) {
  switch (tool) {
    case SanitizerTool::kRace:
      return "race";
    case SanitizerTool::kSync:
      return "sync";
    case SanitizerTool::kInit:
      return "init";
    case SanitizerTool::kBounds:
      return "bounds";
    case SanitizerTool::kNumTools:
      break;
  }
  return "?";
}

const char* hazard_kind_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kRawRace:
      return "raw_race";
    case HazardKind::kWarRace:
      return "war_race";
    case HazardKind::kWawRace:
      return "waw_race";
    case HazardKind::kDivergentBarrier:
      return "divergent_barrier";
    case HazardKind::kBarrierMismatch:
      return "barrier_mismatch";
    case HazardKind::kUninitSmemRead:
      return "uninit_smem_read";
    case HazardKind::kGlobalUseAfterFree:
      return "global_use_after_free";
    case HazardKind::kSmemOob:
      return "smem_oob";
    case HazardKind::kGlobalOob:
      return "global_oob";
    case HazardKind::kNumHazardKinds:
      break;
  }
  return "?";
}

SanitizerTool hazard_tool(HazardKind kind) {
  switch (kind) {
    case HazardKind::kRawRace:
    case HazardKind::kWarRace:
    case HazardKind::kWawRace:
      return SanitizerTool::kRace;
    case HazardKind::kDivergentBarrier:
    case HazardKind::kBarrierMismatch:
      return SanitizerTool::kSync;
    case HazardKind::kUninitSmemRead:
    case HazardKind::kGlobalUseAfterFree:
      return SanitizerTool::kInit;
    case HazardKind::kSmemOob:
    case HazardKind::kGlobalOob:
    case HazardKind::kNumHazardKinds:
      break;
  }
  return SanitizerTool::kBounds;
}

namespace {

void append_site(std::ostream& os, const char* label, const HazardSite& site) {
  os << label << "=[";
  if (site.warp < 0) {
    os << "none";
  } else {
    os << "warp " << site.warp << ' ' << op_name(site.op) << " @op "
       << site.cta_op;
  }
  os << ']';
}

}  // namespace

std::string to_string(const SanitizerReport& report) {
  std::ostringstream os;
  os << sanitizer_tool_name(report.tool()) << ':'
     << hazard_kind_name(report.kind) << " sm=" << report.sm
     << " cta=" << report.cta << " addr=0x" << std::hex << report.addr
     << std::dec << " bytes=" << report.bytes << " epoch=" << report.epoch
     << ' ';
  append_site(os, "first", report.first);
  os << ' ';
  append_site(os, "second", report.second);
  if (!report.detail.empty()) os << " -- " << report.detail;
  return os.str();
}

std::uint64_t Sanitizer::num_reports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const LaunchSanitizerRecord& launch : launches_) {
    n += launch.reports.size();
  }
  return n;
}

std::uint64_t Sanitizer::num_reports(SanitizerTool tool) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const LaunchSanitizerRecord& launch : launches_) {
    for (const SanitizerReport& report : launch.reports) {
      if (report.tool() == tool) ++n;
    }
  }
  return n;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

void site_json(std::ostream& os, const HazardSite& site) {
  os << "{\"warp\": " << site.warp << ", \"op\": \"" << op_name(site.op)
     << "\", \"cta_op\": " << site.cta_op << '}';
}

}  // namespace

std::string sanitizer_json(const Sanitizer& sink) {
  const std::vector<LaunchSanitizerRecord> launches = sink.launches();

  std::uint64_t total = 0;
  std::uint64_t suppressed = 0;
  std::array<std::uint64_t, static_cast<int>(SanitizerTool::kNumTools)>
      by_tool{};
  for (const LaunchSanitizerRecord& launch : launches) {
    total += launch.reports.size();
    suppressed += launch.suppressed;
    for (const SanitizerReport& report : launch.reports) {
      ++by_tool[static_cast<std::size_t>(report.tool())];
    }
  }

  std::ostringstream os;
  os << "{\n  \"schema\": \"vsparse-sanitizer-v1\",\n  \"num_launches\": "
     << launches.size() << ",\n  \"num_reports\": " << total
     << ",\n  \"num_suppressed\": " << suppressed << ",\n  \"by_tool\": {";
  for (int t = 0; t < static_cast<int>(SanitizerTool::kNumTools); ++t) {
    os << (t == 0 ? "" : ", ") << '"'
       << sanitizer_tool_name(static_cast<SanitizerTool>(t))
       << "\": " << by_tool[static_cast<std::size_t>(t)];
  }
  os << "},\n  \"launches\": [";
  bool first_launch = true;
  int index = 0;
  for (const LaunchSanitizerRecord& launch : launches) {
    os << (first_launch ? "\n" : ",\n");
    first_launch = false;
    os << "    {\n      \"index\": " << index++ << ",\n      \"kernel\": \"";
    json_escape(os, launch.kernel);
    os << "\",\n      \"grid\": " << launch.grid
       << ",\n      \"cta_threads\": " << launch.cta_threads
       << ",\n      \"smem_bytes\": " << launch.smem_bytes
       << ",\n      \"aborted\": " << (launch.aborted ? "true" : "false")
       << ",\n      \"suppressed\": " << launch.suppressed
       << ",\n      \"span_fastpath_ops\": " << launch.span_fastpath_ops
       << ",\n      \"reports\": [";
    bool first_report = true;
    for (const SanitizerReport& report : launch.reports) {
      os << (first_report ? "\n" : ",\n");
      first_report = false;
      os << "        {\"tool\": \"" << sanitizer_tool_name(report.tool())
         << "\", \"kind\": \"" << hazard_kind_name(report.kind)
         << "\", \"sm\": " << report.sm << ", \"cta\": " << report.cta
         << ", \"addr\": " << report.addr << ", \"bytes\": " << report.bytes
         << ", \"epoch\": " << report.epoch << ",\n         \"first\": ";
      site_json(os, report.first);
      os << ", \"second\": ";
      site_json(os, report.second);
      os << ",\n         \"detail\": \"";
      json_escape(os, report.detail);
      os << "\"}";
    }
    os << (first_report ? "]" : "\n      ]") << "\n    }";
  }
  os << (first_launch ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

bool write_sanitizer_report(const Sanitizer& sink, const std::string& path) {
  const std::string body = sanitizer_json(sink);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && ok;
}

bool parse_sanitizer_tools(std::string_view spec, SanitizerOptions* opts) {
  opts->race = opts->sync = opts->init = opts->bounds = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view tok = spec.substr(pos, comma - pos);
    if (tok == "race") {
      opts->race = true;
    } else if (tok == "sync") {
      opts->sync = true;
    } else if (tok == "init") {
      opts->init = true;
    } else if (tok == "bounds") {
      opts->bounds = true;
    } else if (tok == "all") {
      opts->race = opts->sync = opts->init = opts->bounds = true;
    } else if (!tok.empty()) {
      return false;
    }
    pos = comma + 1;
  }
  return true;
}

}  // namespace vsparse::gpusim

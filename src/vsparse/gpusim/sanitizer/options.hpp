// Per-launch sanitizer knobs — the correctness analogue of
// TraceOptions.  Leaf header (only <cstdint>): included by SimOptions
// so every kernel entry point that already takes SimOptions carries the
// sanitizer configuration with no signature change.
//
// Inherit chain (same as SimOptions::threads and ::trace): a launch
// whose SanitizerOptions has no sink inherits the Device's configured
// default (Device::set_sim_options), which itself defaults to
// "disabled".  With no sink anywhere the engine takes a null-pointer
// fast path — exactly the FaultState pattern — and the run is bit- and
// counter-identical to a build without the sanitizer subsystem.
#pragma once

#include <cstdint>

namespace vsparse::gpusim {

class Sanitizer;

struct SanitizerOptions {
  /// Destination for the hazard reports.  nullptr = sanitizing disabled
  /// (the zero-overhead fast path).  The sink must outlive every launch
  /// that writes to it; one sink typically collects a whole bench run
  /// and is exported once at the end.
  Sanitizer* sink = nullptr;

  /// Tool selection (cuda-memcheck's racecheck / synccheck /
  /// initcheck+memcheck split).  All on by default; `--sanitize=LIST`
  /// in the bench drivers narrows the set.
  bool race = true;    ///< shared-memory barrier-epoch race detection
  bool sync = true;    ///< divergent barriers, mismatched barrier counts
  bool init = true;    ///< reads of never-written smem / freed device mem
  bool bounds = true;  ///< smem bounds, device red-zone guards

  /// Racecheck span fast path: a span op whose descriptor is provably
  /// in-bounds and — by the static verifier's exact overlap primitive
  /// (gpusim/verify/span_set.hpp) — disjoint from every cross-warp
  /// same-epoch access logged this CTA skips the per-byte shadow walk;
  /// its footprint is logged once and replayed into the shadow only if
  /// a later op needs the per-byte state.  Reports are identical with
  /// the flag on or off (a possibly-conflicting or out-of-bounds span
  /// always falls back to the exact per-lane path).  Initcheck needs
  /// per-byte write tracking, so `init` disables the fast path.
  bool span_fastpath = true;

  /// Per-launch cap on merged reports delivered to the sink (reports
  /// beyond the cap are counted as suppressed, never silently dropped).
  /// Deduplication happens first, so the cap only matters for launches
  /// with many *distinct* hazards.
  std::uint32_t max_reports = 256;

  bool enabled() const { return sink != nullptr; }
  bool any_tool() const { return race || sync || init || bounds; }
};

}  // namespace vsparse::gpusim

// Structured hazard reports and the launch-lifetime `Sanitizer` sink.
//
// The per-SM collectors (`SmSanitizer`, shadow.hpp) detect hazards on
// the simulation hot path; at launch end the engine merges them in
// SM-id order — the same scheme `finish_trace` uses — deduplicates
// across SMs, applies the report cap, and delivers one
// `LaunchSanitizerRecord` to the sink.  Because per-SM CTA order is
// fixed by the scheduler regardless of host thread count, the merged
// report list (and therefore the JSON export) is byte-identical across
// `--threads=1/2/8`.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "vsparse/gpusim/sanitizer/options.hpp"
#include "vsparse/gpusim/stats.hpp"

namespace vsparse::gpusim {

/// Which cuda-memcheck-style tool produced a report.
enum class SanitizerTool : std::uint8_t {
  kRace,    ///< racecheck: shared-memory barrier-epoch conflicts
  kSync,    ///< synccheck: divergent / mismatched barriers
  kInit,    ///< initcheck: reads of never-written or freed memory
  kBounds,  ///< boundscheck: smem bounds, device red-zone guards
  kNumTools,
};

const char* sanitizer_tool_name(SanitizerTool tool);

enum class HazardKind : std::uint8_t {
  // racecheck
  kRawRace,  ///< lds observes an sts from another warp, same epoch
  kWarRace,  ///< sts overwrites a byte another warp read, same epoch
  kWawRace,  ///< sts overwrites a byte another warp wrote, same epoch
  // synccheck
  kDivergentBarrier,  ///< Warp::bar_sync under a partial lane mask
  kBarrierMismatch,   ///< warps of one CTA left with unequal barrier counts
  // initcheck
  kUninitSmemRead,      ///< lds of a byte no sts wrote this CTA
  kGlobalUseAfterFree,  ///< ldg/stg inside a freed allocation
  // boundscheck
  kSmemOob,    ///< lds/sts beyond LaunchConfig::smem_bytes
  kGlobalOob,  ///< ldg/stg in the red zone between / past allocations
  kNumHazardKinds,
};

const char* hazard_kind_name(HazardKind kind);

/// Maps a hazard kind back to the tool that owns it (used for tool
/// filtering and the per-tool counts in the JSON export).
SanitizerTool hazard_tool(HazardKind kind);

/// One end of a hazard: which warp issued which op, and where in the
/// CTA's deterministic op stream.  `cta_op` is the index of the op
/// among the CTA's sanitized memory/barrier ops — a stable "line
/// number" for the simulated instruction stream (the same kernel
/// control flow always yields the same index).  warp < 0 means "no
/// site" (e.g. the first site of an uninitialized read has no writer).
struct HazardSite {
  std::int32_t warp = -1;
  Op op = Op::kMisc;
  std::uint64_t cta_op = 0;

  bool operator==(const HazardSite&) const = default;
};

struct SanitizerReport {
  HazardKind kind = HazardKind::kNumHazardKinds;
  std::int32_t sm = -1;   ///< SM the reporting CTA ran on
  std::int32_t cta = -1;  ///< linear CTA id within the grid
  HazardSite first;       ///< earlier op (writer/reader/arrival)
  HazardSite second;      ///< op that completed the hazard
  std::uint64_t addr = 0;     ///< smem byte offset or device address
  std::uint32_t bytes = 0;    ///< contiguous bytes implicated at `addr`
  std::uint32_t epoch = 0;    ///< barrier epoch of `second` (race tools)
  std::string detail;         ///< human-readable specifics

  SanitizerTool tool() const { return hazard_tool(kind); }
  bool operator==(const SanitizerReport&) const = default;
};

/// One line, stable across runs: used by tests and the bench summary.
std::string to_string(const SanitizerReport& report);

/// Everything the sanitizer learned about a single launch.
struct LaunchSanitizerRecord {
  std::string kernel;
  int grid = 0;
  int cta_threads = 0;
  std::size_t smem_bytes = 0;
  bool aborted = false;  ///< launch unwound via an exception
  std::uint64_t suppressed = 0;  ///< deduped-but-over-cap report count
  /// Smem span ops admitted on the racecheck fast path (descriptor
  /// proven in-bounds and overlap-free; per-byte shadow walk skipped).
  std::uint64_t span_fastpath_ops = 0;
  std::vector<SanitizerReport> reports;

  bool operator==(const LaunchSanitizerRecord&) const = default;
};

/// Process-lifetime sink collecting records across launches, mirroring
/// the `Trace` sink's shape: the engine appends one record per
/// sanitized launch (success or abort); a session exports everything
/// once via `sanitizer_json`.  Thread-safe for the same reason Trace
/// is — concurrent sanitized launches on different devices share one
/// sink in the bench drivers.
class Sanitizer {
 public:
  void add_launch(LaunchSanitizerRecord&& record) {
    std::lock_guard<std::mutex> lock(mutex_);
    launches_.push_back(std::move(record));
  }

  std::vector<LaunchSanitizerRecord> launches() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return launches_;
  }

  /// Total merged reports across all launches (excludes suppressed).
  std::uint64_t num_reports() const;

  /// Reports attributed to one tool, across all launches.
  std::uint64_t num_reports(SanitizerTool tool) const;

  std::uint64_t num_launches() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return launches_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    launches_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<LaunchSanitizerRecord> launches_;
};

/// Serializes the sink as schema `vsparse-sanitizer-v1` (validated by
/// tools/validate_sanitizer_report.py).  Deterministic: byte-identical
/// for byte-identical report lists.
std::string sanitizer_json(const Sanitizer& sink);

/// Writes `sanitizer_json` to `path`; returns false on I/O failure.
bool write_sanitizer_report(const Sanitizer& sink, const std::string& path);

/// Parses a `--sanitize=` tool list ("race,sync,init,bounds"; "all" =
/// everything) into `opts` tool flags (sink untouched).  Returns false
/// on an unknown token; `opts` is left with only the tools parsed so
/// far enabled.
bool parse_sanitizer_tools(std::string_view spec, SanitizerOptions* opts);

}  // namespace vsparse::gpusim

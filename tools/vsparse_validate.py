#!/usr/bin/env python3
"""Shared stdlib-only helpers for the vsparse artifact validators.

Every validate_*.py script in this directory accumulates human-readable
findings against one JSON artifact and exits non-zero when any check
failed.  This module hosts the pieces they all repeated before PR 10:
the finding accumulator, the common type predicates, resilient JSON
loading, the schema/version-tag check, and the sanitizer hazard-kind ->
tool ownership table (previously duplicated between validate_trace.py
and validate_sanitizer_report.py).

Each validator runs as its own process, so a module-global accumulator
is safe and keeps the call sites as terse as the local `check()` they
replaced.  Stdlib only — runs anywhere CI has a python3.
"""
import json
import sys

# Sanitizer hazard kinds by owning tool; keep in sync with
# gpusim/sanitizer/report.cpp.
SANITIZER_KIND_TO_TOOL = {
    "raw_race": "race",
    "war_race": "race",
    "waw_race": "race",
    "divergent_barrier": "sync",
    "barrier_mismatch": "sync",
    "uninit_smem_read": "init",
    "global_use_after_free": "init",
    "smem_oob": "bounds",
    "global_oob": "bounds",
}
SANITIZER_TOOLS = ("race", "sync", "init", "bounds")

_errors = []


def reset():
    """Clear the accumulator (tests that validate several artifacts)."""
    del _errors[:]


def check(cond, msg):
    """Record `msg` as a finding when `cond` is falsy; returns the
    condition so callers can guard dependent checks."""
    if not cond:
        _errors.append(msg)
    return bool(cond)


def fail(msg):
    """Record an unconditional finding."""
    _errors.append(msg)


def errors():
    """The findings recorded so far, in order."""
    return list(_errors)


def is_uint(x):
    """A non-negative int that is not a bool (JSON has no distinct
    unsigned type, but True/False parse as int)."""
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def is_number(x):
    """An int or float that is not a bool."""
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def load_json(path):
    """Parse `path` as JSON; records a finding and returns None when the
    file is missing or malformed."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
        return None


def check_schema(doc, tag, key="schema"):
    """Top-level shape + version-tag check shared by every artifact."""
    if not check(isinstance(doc, dict), "top level is not an object"):
        return False
    return check(doc.get(key) == tag,
                 f"{key} is {doc.get(key)!r}, want {tag!r}")


def report_errors(prefix="", file=None):
    """Print every finding as a FAIL line; returns the exit code (1 when
    any finding was recorded, else 0)."""
    out = file if file is not None else sys.stderr
    for e in _errors:
        print(f"{prefix}FAIL: {e}", file=out)
    return 1 if _errors else 0

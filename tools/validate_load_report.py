#!/usr/bin/env python3
"""Validate a vsparse-load-v2 serving load report.

Usage: validate_load_report.py FILE [--baseline=BENCH.json]
       [--expect-chaos] [--expect-device-chaos] [--expect-clean-verify]
       [--repro=REPRO.json]

Checks the JSON the serve_load driver writes (LoadResult::to_json):
schema tag, the per-tenant outcome accounting invariants
(submitted = completed + failed + rejected + shed_queue + shed_deadline
and completed = slo_met + deadline_miss, per tenant and in total, with
tenant sums matching the totals), latency percentile ordering
(p50 <= p99 <= max), chaos and device-chaos window sanity (begin < end,
known kinds), health event consistency (non-decreasing ticks, totals
matching the event list), the fleet section (placement arithmetic,
worker states, event kinds), the request ledger (exactly-once
accounting: every trace id appears exactly once with a terminal
outcome, and the outcome histogram reproduces the totals), and the
verify block.  With --repro the flight-recorder artifact is
cross-checked against the ledger: every captured bundle must belong to
a request that failed or was re-placed.  With --baseline the headline
numbers (goodput, final_tick, totals, health counters) must match the
committed BENCH_serve_load.json exactly — the report is deterministic,
so any drift is a real behavior change that needs a baseline refresh.
Stdlib only — runs anywhere CI has a python3.
"""
import sys

from vsparse_validate import check, check_schema, errors, load_json, \
    report_errors

SCHEMA = "vsparse-load-v2"
REPRO_SCHEMA = "vsparse-repro-v1"
CHAOS_KINDS = {"ecc_burst", "brownout", "mem_pressure", "policy_corrupt"}
DEVICE_CHAOS_KINDS = {"wedge", "brownout", "flap", "death"}
EVENT_KINDS = {"quarantine", "half_open", "restore", "reopen"}
FLEET_EVENT_KINDS = {"probe", "dead", "drain", "drain_reopen", "restore",
                     "hedge", "hedge_cancel", "failover"}
WORKER_STATES = {"active", "draining", "dead"}
LEDGER_OUTCOMES = {"completed", "shed_queue", "shed_deadline", "rejected",
                   "failed"}
PLACEMENT_FIELDS = ("placements", "failovers", "migrated", "hedges",
                    "hedge_wins_secondary", "hedge_cancelled",
                    "hedges_unlaunched", "probes", "drains", "drain_reopens",
                    "restores", "devices_lost")
TENANT_COUNTS = ("submitted", "completed", "slo_met", "deadline_miss",
                 "shed_queue", "shed_deadline", "rejected", "failed")


def check_tenant(t, where):
    for field in TENANT_COUNTS + ("p50_latency_ticks", "p99_latency_ticks",
                                  "max_latency_ticks"):
        v = t.get(field)
        check(isinstance(v, int) and v >= 0,
              f"{where}.{field} is {v!r}, want a non-negative integer")
    s = {f: t.get(f, 0) for f in TENANT_COUNTS}
    check(s["submitted"] == s["completed"] + s["failed"] + s["rejected"] +
          s["shed_queue"] + s["shed_deadline"],
          f"{where}: submitted {s['submitted']} != completed+failed+rejected"
          f"+shed_queue+shed_deadline")
    check(s["completed"] == s["slo_met"] + s["deadline_miss"],
          f"{where}: completed {s['completed']} != slo_met+deadline_miss")
    check(t.get("p50_latency_ticks", 0) <= t.get("p99_latency_ticks", 0)
          <= t.get("max_latency_ticks", 0),
          f"{where}: latency percentiles not ordered p50 <= p99 <= max")


def check_windows(windows, kinds, where, device_count=None):
    for i, w in enumerate(windows):
        check(w.get("kind") in kinds,
              f"{where}[{i}] kind {w.get('kind')!r} unknown")
        check(isinstance(w.get("begin"), int) and isinstance(w.get("end"), int)
              and w["begin"] < w["end"],
              f"{where}[{i}] is not a valid [begin, end) interval")
        if device_count is not None:
            check(isinstance(w.get("device"), int)
                  and 0 <= w["device"] < device_count,
                  f"{where}[{i}] device {w.get('device')!r} outside fleet")


def check_health(health, where="health"):
    events = health.get("events", [])
    by_kind = {k: 0 for k in EVENT_KINDS}
    last_tick = 0
    for i, e in enumerate(events):
        kind = e.get("kind")
        check(kind in EVENT_KINDS, f"{where}.events[{i}] kind {kind!r} unknown")
        tick = e.get("tick")
        check(isinstance(tick, int) and tick >= last_tick,
              f"{where}.events[{i}] tick {tick!r} decreases")
        last_tick = tick if isinstance(tick, int) else last_tick
        check(isinstance(e.get("kernel"), str) and e.get("kernel"),
              f"{where}.events[{i}] missing kernel name")
        if kind in by_kind:
            by_kind[kind] += 1
    for counter, kind in (("quarantines", "quarantine"),
                          ("half_opens", "half_open"),
                          ("restores", "restore"), ("reopens", "reopen")):
        check(health.get(counter) == by_kind[kind],
              f"{where}.{counter} {health.get(counter)} != {by_kind[kind]} "
              f"{kind} events")


def check_fleet(doc):
    devices = doc.get("devices")
    check(isinstance(devices, int) and devices >= 1,
          f"devices {devices!r} must be a positive integer")
    fleet = doc.get("fleet", {})
    check(isinstance(fleet, dict), "fleet must be an object")
    stats = fleet.get("placements", {})
    for field in PLACEMENT_FIELDS:
        v = stats.get(field)
        check(isinstance(v, int) and v >= 0,
              f"fleet.placements.{field} is {v!r}, want a non-negative int")

    workers = fleet.get("workers", [])
    check(isinstance(workers, list) and len(workers) == devices,
          f"fleet.workers has {len(workers)} entries, want devices={devices}")
    wsum = {"placements": 0, "probes": 0}
    for i, w in enumerate(workers):
        check(w.get("device") == i, f"fleet.workers[{i}] device id mismatch")
        check(w.get("state") in WORKER_STATES,
              f"fleet.workers[{i}] state {w.get('state')!r} unknown")
        for f in ("placements", "completions", "failures", "probes"):
            check(isinstance(w.get(f), int) and w[f] >= 0,
                  f"fleet.workers[{i}].{f} is {w.get(f)!r}")
        wsum["placements"] += w.get("placements", 0)
        wsum["probes"] += w.get("probes", 0)
    check(wsum["placements"] == stats.get("placements"),
          f"worker placement sum {wsum['placements']} != "
          f"fleet.placements.placements {stats.get('placements')}")
    check(wsum["probes"] == stats.get("probes"),
          f"worker probe sum {wsum['probes']} != fleet.placements.probes")

    by_kind = {}
    last_tick = 0
    for i, e in enumerate(fleet.get("events", [])):
        kind = e.get("kind")
        check(kind in FLEET_EVENT_KINDS,
              f"fleet.events[{i}] kind {kind!r} unknown")
        tick = e.get("tick")
        check(isinstance(tick, int) and tick >= last_tick,
              f"fleet.events[{i}] tick {tick!r} decreases")
        last_tick = tick if isinstance(tick, int) else last_tick
        check(isinstance(e.get("device"), int)
              and 0 <= e.get("device", -1) < devices,
              f"fleet.events[{i}] device {e.get('device')!r} outside fleet")
        by_kind[kind] = by_kind.get(kind, 0) + 1
    for counter, kind in (("failovers", "failover"), ("hedges", "hedge"),
                          ("hedge_cancelled", "hedge_cancel"),
                          ("probes", "probe"), ("drains", "drain"),
                          ("drain_reopens", "drain_reopen"),
                          ("restores", "restore"), ("devices_lost", "dead")):
        check(stats.get(counter) == by_kind.get(kind, 0),
              f"fleet.placements.{counter} {stats.get(counter)} != "
              f"{by_kind.get(kind, 0)} {kind!r} events")
    return fleet, stats


def check_ledger(doc, totals, stats):
    ledger = doc.get("request_ledger", [])
    check(isinstance(ledger, list), "request_ledger must be an array")
    requests = doc.get("requests", 0)
    check(len(ledger) == requests,
          f"request_ledger has {len(ledger)} entries, want requests="
          f"{requests}")
    seen = set()
    histo = {k: 0 for k in LEDGER_OUTCOMES}
    failover_sum = hedged = hedge_wins = 0
    for i, e in enumerate(ledger):
        rid = e.get("id")
        check(isinstance(rid, int) and 0 <= rid < requests,
              f"request_ledger[{i}] id {rid!r} outside [0, {requests})")
        check(rid not in seen,
              f"request_ledger[{i}] duplicates id {rid} — accounting must "
              f"be exactly-once")
        seen.add(rid)
        outcome = e.get("outcome")
        check(outcome in LEDGER_OUTCOMES,
              f"request_ledger[{i}] outcome {outcome!r} unknown")
        if outcome in histo:
            histo[outcome] += 1
        if outcome == "completed":
            check(e.get("device", -1) >= 0,
                  f"request_ledger[{i}] completed without a device")
            check(e.get("completion_tick", 0) >= e.get("arrival", 0),
                  f"request_ledger[{i}] completes before it arrives")
        if outcome in ("shed_queue", "shed_deadline"):
            check(e.get("device", 0) == -1 and e.get("failovers", 1) == 0,
                  f"request_ledger[{i}] shed but carries placement state")
        failover_sum += e.get("failovers", 0)
        hedged += 1 if e.get("hedged") else 0
        hedge_wins += 1 if e.get("hedge_win_secondary") else 0
    check(len(seen) == requests,
          f"request_ledger covers {len(seen)} distinct ids, want {requests}")
    for outcome, field in (("completed", "completed"),
                           ("shed_queue", "shed_queue"),
                           ("shed_deadline", "shed_deadline"),
                           ("rejected", "rejected"), ("failed", "failed")):
        check(histo[outcome] == totals.get(field),
              f"ledger {outcome} count {histo[outcome]} != totals.{field} "
              f"{totals.get(field)}")
    check(failover_sum == stats.get("failovers"),
          f"ledger failover sum {failover_sum} != fleet failovers "
          f"{stats.get('failovers')}")
    check(hedged == stats.get("hedges"),
          f"ledger hedged count {hedged} != fleet hedges "
          f"{stats.get('hedges')}")
    check(hedge_wins == stats.get("hedge_wins_secondary"),
          f"ledger hedge_win_secondary count {hedge_wins} != fleet "
          f"hedge_wins_secondary {stats.get('hedge_wins_secondary')}")
    return {e["id"]: e for e in ledger if isinstance(e.get("id"), int)}


def check_repro(repro_path, doc, by_id):
    repro = load_json(repro_path)
    if repro is None:
        return
    check(repro.get("schema") == REPRO_SCHEMA,
          f"repro schema {repro.get('schema')!r}, want {REPRO_SCHEMA!r}")
    bundles = repro.get("bundles", [])
    fleet = doc.get("fleet", {})
    check(len(bundles) == fleet.get("repro_bundles"),
          f"repro has {len(bundles)} bundles, report says "
          f"{fleet.get('repro_bundles')}")
    check(repro.get("dropped") == fleet.get("repro_dropped"),
          f"repro dropped {repro.get('dropped')} != report "
          f"{fleet.get('repro_dropped')}")
    devices = doc.get("devices", 1)
    for i, b in enumerate(bundles):
        for field in ("request_id", "tick", "signature", "options_digest"):
            check(field in b, f"repro bundle[{i}] missing {field!r}")
        check(isinstance(b.get("device"), int)
              and 0 <= b.get("device", -1) < devices,
              f"repro bundle[{i}] device outside fleet")
        rid = b.get("request_id")
        entry = by_id.get(rid)
        check(entry is not None,
              f"repro bundle[{i}] request {rid} not in the ledger")
        if entry is not None:
            # A captured failure either stayed failed, or the fleet
            # recovered it (failover / hedge duplicate ate the fault).
            check(entry.get("outcome") == "failed"
                  or entry.get("failovers", 0) > 0 or entry.get("hedged"),
                  f"repro bundle[{i}] request {rid} has outcome "
                  f"{entry.get('outcome')!r} with no failover/hedge — a "
                  f"bundle must correspond to a supervisor-exhausted leg")


def validate(path, expect_chaos, expect_device_chaos, expect_clean_verify,
             repro_path):
    doc = load_json(path)
    if doc is None:
        return {}

    check_schema(doc, SCHEMA)
    check(isinstance(doc.get("final_tick"), int) and doc["final_tick"] > 0,
          "final_tick must be a positive integer")

    totals = doc.get("totals", {})
    check(isinstance(totals, dict), "totals must be an object")
    check_tenant(totals, "totals")
    check(totals.get("submitted") == doc.get("requests"),
          f"totals.submitted {totals.get('submitted')} != requests "
          f"{doc.get('requests')}")

    tenants = doc.get("tenants", [])
    check(isinstance(tenants, list) and tenants, "tenants must be non-empty")
    for i, t in enumerate(tenants):
        check_tenant(t, f"tenants[{i}]")
    for field in TENANT_COUNTS:
        total = sum(t.get(field, 0) for t in tenants)
        check(total == totals.get(field),
              f"tenant {field} sum {total} != totals.{field} "
              f"{totals.get(field)}")

    goodput = doc.get("goodput_per_mtick")
    check(isinstance(goodput, (int, float)) and goodput >= 0,
          f"goodput_per_mtick {goodput!r} must be a non-negative number")
    if totals.get("slo_met", 0) > 0:
        check(goodput > 0, "slo_met > 0 but goodput_per_mtick is 0")

    chaos = doc.get("chaos", {})
    check(isinstance(chaos, dict), "chaos must be an object")
    if expect_chaos:
        check(chaos.get("enabled") is True, "chaos.enabled must be true")
        check(chaos.get("windows"), "chaos run has no storm windows")
    check_windows(chaos.get("windows", []), CHAOS_KINDS, "chaos.windows")

    device_chaos = doc.get("device_chaos", {})
    check(isinstance(device_chaos, dict), "device_chaos must be an object")
    if expect_device_chaos:
        check(device_chaos.get("enabled") is True,
              "device_chaos.enabled must be true")
        check(device_chaos.get("windows"),
              "device-chaos run has no storm windows")
    check_windows(device_chaos.get("windows", []), DEVICE_CHAOS_KINDS,
                  "device_chaos.windows", device_count=doc.get("devices", 1))

    check_health(doc.get("health", {}))
    fleet, stats = check_fleet(doc)
    by_id = check_ledger(doc, totals, stats)

    verify = doc.get("verify", {})
    check(isinstance(verify, dict), "verify must be an object")
    if expect_clean_verify:
        check(verify.get("enabled") is True, "verify.enabled must be true")
        check(verify.get("mismatches") == 0,
              f"verify.mismatches {verify.get('mismatches')} != 0: scheduled "
              f"output diverged from direct dispatch")
        check(verify.get("counter_mismatches") == 0,
              f"verify.counter_mismatches {verify.get('counter_mismatches')} "
              f"!= 0: SM-local counters diverged from direct dispatch")

    if repro_path and not errors():
        check_repro(repro_path, doc, by_id)

    return doc


def check_baseline(doc, baseline_path):
    base = load_json(baseline_path)
    if base is None:
        return
    # The report is deterministic by contract: same seed + config give
    # identical numbers on any machine at any thread count, so exact
    # equality is the right check (no tolerance band).
    for field in ("schema", "seed", "requests", "mean_gap_ticks", "devices",
                  "final_tick", "goodput_per_mtick", "totals", "health",
                  "policy_cache_rejections", "device_chaos", "fleet",
                  "sim_ctas"):
        check(doc.get(field) == base.get(field),
              f"baseline drift in {field!r}: got {doc.get(field)!r}, "
              f"baseline {base.get(field)!r}")


def main(argv):
    path = None
    baseline = None
    repro = None
    expect_chaos = False
    expect_device_chaos = False
    expect_clean_verify = False
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline = arg.split("=", 1)[1]
        elif arg.startswith("--repro="):
            repro = arg.split("=", 1)[1]
        elif arg == "--expect-chaos":
            expect_chaos = True
        elif arg == "--expect-device-chaos":
            expect_device_chaos = True
        elif arg == "--expect-clean-verify":
            expect_clean_verify = True
        elif path is None:
            path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    doc = validate(path, expect_chaos, expect_device_chaos,
                   expect_clean_verify, repro)
    if baseline and not errors():
        check_baseline(doc, baseline)
    if errors():
        return report_errors()
    print(f"OK: {path} (goodput {doc.get('goodput_per_mtick')}/Mtick, "
          f"{doc.get('totals', {}).get('completed')} completed, "
          f"{doc.get('fleet', {}).get('placements', {}).get('failovers')} "
          f"failovers)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

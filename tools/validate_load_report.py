#!/usr/bin/env python3
"""Validate a vsparse-load-v1 serving load report.

Usage: validate_load_report.py FILE [--baseline=BENCH.json]
       [--expect-chaos] [--expect-clean-verify]

Checks the JSON the serve_load driver writes (LoadResult::to_json):
schema tag, the per-tenant outcome accounting invariants
(submitted = completed + failed + rejected + shed_queue + shed_deadline
and completed = slo_met + deadline_miss, per tenant and in total, with
tenant sums matching the totals), latency percentile ordering
(p50 <= p99 <= max), chaos window sanity (begin < end, known kinds),
health event consistency (non-decreasing ticks, totals matching the
event list), and the verify block.  With --baseline the headline
numbers (goodput, final_tick, totals, health counters) must match the
committed BENCH_serve_load.json exactly — the report is deterministic,
so any drift is a real behavior change that needs a baseline refresh.
Stdlib only — runs anywhere CI has a python3.
"""
import json
import sys

SCHEMA = "vsparse-load-v1"
CHAOS_KINDS = {"ecc_burst", "brownout", "mem_pressure", "policy_corrupt"}
EVENT_KINDS = {"quarantine", "half_open", "restore", "reopen"}
TENANT_COUNTS = ("submitted", "completed", "slo_met", "deadline_miss",
                 "shed_queue", "shed_deadline", "rejected", "failed")

_errors = []


def check(cond, msg):
    if not cond:
        _errors.append(msg)


def check_tenant(t, where):
    for field in TENANT_COUNTS + ("p50_latency_ticks", "p99_latency_ticks",
                                  "max_latency_ticks"):
        v = t.get(field)
        check(isinstance(v, int) and v >= 0,
              f"{where}.{field} is {v!r}, want a non-negative integer")
    s = {f: t.get(f, 0) for f in TENANT_COUNTS}
    check(s["submitted"] == s["completed"] + s["failed"] + s["rejected"] +
          s["shed_queue"] + s["shed_deadline"],
          f"{where}: submitted {s['submitted']} != completed+failed+rejected"
          f"+shed_queue+shed_deadline")
    check(s["completed"] == s["slo_met"] + s["deadline_miss"],
          f"{where}: completed {s['completed']} != slo_met+deadline_miss")
    check(t.get("p50_latency_ticks", 0) <= t.get("p99_latency_ticks", 0)
          <= t.get("max_latency_ticks", 0),
          f"{where}: latency percentiles not ordered p50 <= p99 <= max")


def validate(path, expect_chaos, expect_clean_verify):
    with open(path) as f:
        doc = json.load(f)

    check(doc.get("schema") == SCHEMA,
          f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    check(isinstance(doc.get("final_tick"), int) and doc["final_tick"] > 0,
          "final_tick must be a positive integer")

    totals = doc.get("totals", {})
    check(isinstance(totals, dict), "totals must be an object")
    check_tenant(totals, "totals")
    check(totals.get("submitted") == doc.get("requests"),
          f"totals.submitted {totals.get('submitted')} != requests "
          f"{doc.get('requests')}")

    tenants = doc.get("tenants", [])
    check(isinstance(tenants, list) and tenants, "tenants must be non-empty")
    for i, t in enumerate(tenants):
        check_tenant(t, f"tenants[{i}]")
    for field in TENANT_COUNTS:
        total = sum(t.get(field, 0) for t in tenants)
        check(total == totals.get(field),
              f"tenant {field} sum {total} != totals.{field} "
              f"{totals.get(field)}")

    goodput = doc.get("goodput_per_mtick")
    check(isinstance(goodput, (int, float)) and goodput >= 0,
          f"goodput_per_mtick {goodput!r} must be a non-negative number")
    if totals.get("slo_met", 0) > 0:
        check(goodput > 0, "slo_met > 0 but goodput_per_mtick is 0")

    chaos = doc.get("chaos", {})
    check(isinstance(chaos, dict), "chaos must be an object")
    windows = chaos.get("windows", [])
    if expect_chaos:
        check(chaos.get("enabled") is True, "chaos.enabled must be true")
        check(windows, "chaos run has no storm windows")
    for i, w in enumerate(windows):
        check(w.get("kind") in CHAOS_KINDS,
              f"chaos.windows[{i}] kind {w.get('kind')!r} unknown")
        check(isinstance(w.get("begin"), int) and isinstance(w.get("end"), int)
              and w["begin"] < w["end"],
              f"chaos.windows[{i}] is not a valid [begin, end) interval")

    health = doc.get("health", {})
    events = health.get("events", [])
    by_kind = {k: 0 for k in EVENT_KINDS}
    last_tick = 0
    for i, e in enumerate(events):
        kind = e.get("kind")
        check(kind in EVENT_KINDS, f"health.events[{i}] kind {kind!r} unknown")
        tick = e.get("tick")
        check(isinstance(tick, int) and tick >= last_tick,
              f"health.events[{i}] tick {tick!r} decreases")
        last_tick = tick if isinstance(tick, int) else last_tick
        check(isinstance(e.get("kernel"), str) and e.get("kernel"),
              f"health.events[{i}] missing kernel name")
        if kind in by_kind:
            by_kind[kind] += 1
    for counter, kind in (("quarantines", "quarantine"),
                          ("half_opens", "half_open"),
                          ("restores", "restore"), ("reopens", "reopen")):
        check(health.get(counter) == by_kind[kind],
              f"health.{counter} {health.get(counter)} != {by_kind[kind]} "
              f"{kind} events")

    verify = doc.get("verify", {})
    check(isinstance(verify, dict), "verify must be an object")
    if expect_clean_verify:
        check(verify.get("enabled") is True, "verify.enabled must be true")
        check(verify.get("mismatches") == 0,
              f"verify.mismatches {verify.get('mismatches')} != 0: scheduled "
              f"output diverged from direct dispatch")
        check(verify.get("counter_mismatches") == 0,
              f"verify.counter_mismatches {verify.get('counter_mismatches')} "
              f"!= 0: SM-local counters diverged from direct dispatch")

    return doc


def check_baseline(doc, baseline_path):
    with open(baseline_path) as f:
        base = json.load(f)
    # The report is deterministic by contract: same seed + config give
    # identical numbers on any machine at any thread count, so exact
    # equality is the right check (no tolerance band).
    for field in ("schema", "seed", "requests", "mean_gap_ticks",
                  "final_tick", "goodput_per_mtick", "totals", "health",
                  "policy_cache_rejections", "sim_ctas"):
        check(doc.get(field) == base.get(field),
              f"baseline drift in {field!r}: got {doc.get(field)!r}, "
              f"baseline {base.get(field)!r}")


def main(argv):
    path = None
    baseline = None
    expect_chaos = False
    expect_clean_verify = False
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline = arg.split("=", 1)[1]
        elif arg == "--expect-chaos":
            expect_chaos = True
        elif arg == "--expect-clean-verify":
            expect_clean_verify = True
        elif path is None:
            path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    doc = validate(path, expect_chaos, expect_clean_verify)
    if baseline and not _errors:
        check_baseline(doc, baseline)
    if _errors:
        for e in _errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"OK: {path} (goodput {doc.get('goodput_per_mtick')}/Mtick, "
          f"{doc.get('totals', {}).get('completed')} completed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

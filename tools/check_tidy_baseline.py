#!/usr/bin/env python3
"""Gate clang-tidy output against the committed warning baseline.

Usage: run-clang-tidy ... | tee tidy.log
       check_tidy_baseline.py tidy.log [--baseline=.clang-tidy-baseline]

Parses clang-tidy diagnostics of the form

  path/to/file.cpp:123:4: warning: message [check-name]

dedupes them by (file, line, check) — header warnings repeat once per
including TU — and compares the per-check counts against the ceilings
in the baseline file.  A check above its ceiling fails the job; a check
absent from the baseline is reported but not gated (add it at its
current count to start ratcheting it down).  Ceilings only ever go
down: when a count drops below its ceiling the script says so, so the
baseline can be tightened in the same PR.  Stdlib only.
"""
import json
import re
import sys

DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s.*\[(?P<checks>[a-zA-Z0-9.,_-]+)\]\s*$")


def count_diags(lines):
    seen = set()
    counts = {}
    for line in lines:
        m = DIAG_RE.match(line.rstrip("\n"))
        if m is None:
            continue
        # A diagnostic may carry a comma list of check aliases; attribute
        # it to each so suppressing an alias cannot hide a finding.
        for check in m.group("checks").split(","):
            key = (m.group("file"), m.group("line"), check)
            if key in seen:
                continue
            seen.add(key)
            counts[check] = counts.get(check, 0) + 1
    return counts


def main(argv):
    log_path = None
    baseline_path = ".clang-tidy-baseline"
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline_path = arg.split("=", 1)[1]
        elif log_path is None:
            log_path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if log_path is None:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(baseline_path, encoding="utf-8") as f:
            ceilings = json.load(f).get("ceilings", {})
    except (OSError, ValueError) as e:
        print(f"check_tidy_baseline: cannot read {baseline_path}: {e}",
              file=sys.stderr)
        return 1
    try:
        with open(log_path, encoding="utf-8", errors="replace") as f:
            counts = count_diags(f)
    except OSError as e:
        print(f"check_tidy_baseline: cannot read {log_path}: {e}",
              file=sys.stderr)
        return 1

    failed = False
    for check in sorted(set(counts) | set(ceilings)):
        if check == "comment":
            continue
        have = counts.get(check, 0)
        ceiling = ceilings.get(check)
        if ceiling is None:
            if have:
                print(f"  (ungated) {check}: {have} warning(s)")
        elif have > ceiling:
            print(f"FAIL: {check}: {have} warning(s), baseline allows "
                  f"{ceiling}")
            failed = True
        elif have < ceiling:
            print(f"  ratchet: {check}: {have} < ceiling {ceiling} — "
                  f"tighten {baseline_path}")
        else:
            print(f"  ok: {check}: {have} (at ceiling)")
    if failed:
        print("check_tidy_baseline: baseline grew — fix the new warnings "
              "or justify a NOLINT with the specific check name")
        return 1
    total = sum(counts.values())
    print(f"check_tidy_baseline: OK ({total} unique warning(s), none above "
          f"baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Static launch verifier CLI — proves every registered kernel (plus
// the dense GEMM / softmax entry points) safe over the builtin shape
// classes, per architecture preset, and emits the vsparse-static-v1
// certificate store plus the vsparse-lint-v1 findings.
//
//   static_verify [--arch=all|NAME] [--out=CERTS.json] [--lint=LINT.json]
//                 [--cross-check] [--quiet]
//
// --cross-check re-runs each `proved` (kernel, shape class, arch)
// verdict dynamically: it synthesizes a concrete member shape of the
// class, launches the real kernel on a fresh device with every
// sanitizer tool enabled, and requires zero reports.  A kernel that
// rejects the member shape via its own launch preconditions is
// consistent with a proof-by-rejection and is skipped.  Any sanitizer
// report against a proved verdict is a verifier/sanitizer disagreement.
//
// Exit 0: no refuted verdicts, no disagreements.  Exit 1: at least one
// refutation or disagreement.  Exit 2: bad usage / unknown preset.
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/arch.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/sanitizer/report.hpp"
#include "vsparse/gpusim/verify/certs.hpp"
#include "vsparse/gpusim/verify/verifier.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/registry.hpp"
#include "vsparse/kernels/softmax/sparse_softmax.hpp"

namespace {

using vsparse::gpusim::DeviceConfig;
using namespace vsparse;

struct Target {
  std::string name;
  kernels::ContractFn contract;
};

std::vector<Target> verification_targets() {
  std::vector<Target> targets;
  for (const kernels::KernelDesc& desc : kernels::kernel_registry()) {
    targets.push_back({desc.name, desc.contract});
  }
  for (const verify::ExtraContract& extra : verify::extra_contracts()) {
    if (kernels::find_kernel(extra.name) == nullptr) {
      targets.push_back({extra.name, extra.contract});
    }
  }
  return targets;
}

/// A concrete member of the class: the smallest aligned extents with
/// the midpoint density (corner shapes are the proof obligations; the
/// cross-check wants a *typical* member).
verify::ShapeCorner member_shape(const verify::ShapeClass& cls) {
  verify::ShapeCorner s;
  s.m = cls.m.lo;
  s.k = cls.k.lo;
  s.n = cls.n.lo;
  s.v = cls.v;
  s.density = (cls.d_lo + cls.d_hi) / 2.0;
  return s;
}

struct CrossCheck {
  bool ran = false;  ///< false: kernel rejected the member shape
  std::uint64_t reports = 0;
};

gpusim::Device fresh_device(const DeviceConfig& hw, gpusim::Sanitizer* sink) {
  DeviceConfig cfg = hw;
  cfg.dram_capacity = std::size_t{1} << 30;
  gpusim::Device dev(cfg);
  gpusim::SimOptions sim;
  sim.sanitize.sink = sink;
  dev.set_sim_options(sim);
  return dev;
}

CrossCheck run_member(const std::string& kernel,
                      const verify::ShapeCorner& s, const DeviceConfig& hw) {
  CrossCheck result;
  const double sparsity = 1.0 - s.density;
  Rng rng(0x5eedC0DEull ^ static_cast<std::uint64_t>(s.m * 31 + s.n));
  gpusim::Sanitizer sink;
  try {
    gpusim::Device dev = fresh_device(hw, &sink);
    const kernels::KernelDesc* desc = kernels::find_kernel(kernel);
    if (desc != nullptr && desc->op == kernels::KernelOp::kSpmm) {
      const Cvs a_host = make_cvs(s.m, s.k, s.v, sparsity, rng);
      CvsDevice a = to_device(dev, a_host);
      auto b = dev.alloc<half_t>(static_cast<std::size_t>(s.k) * s.n);
      auto c = dev.alloc<half_t>(static_cast<std::size_t>(s.m) * s.n);
      DenseDevice<half_t> db{b, s.k, s.n, s.n, Layout::kRowMajor};
      DenseDevice<half_t> dc{c, s.m, s.n, s.n, Layout::kRowMajor};
      kernels::SpmmCall call{dev, a, db, dc, {}};
      BlockedEllDevice ell_dev;
      DenseDevice<half_t> dense_a;
      if (desc->format == kernels::OperandFormat::kBlockedEll) {
        ell_dev = to_device(dev, BlockedEll::from_dense(a_host.to_dense(),
                                                        s.v));
        call.ell = &ell_dev;
      } else if (desc->format == kernels::OperandFormat::kDense) {
        dense_a = to_device(dev, a_host.to_dense());
        call.dense_a = &dense_a;
      }
      desc->spmm_launch(call);
    } else if (desc != nullptr && desc->op == kernels::KernelOp::kSddmm) {
      const Cvs mask_host = make_cvs_mask(s.m, s.n, s.v, sparsity, rng);
      CvsDevice mask = to_device(dev, mask_host);
      auto a = dev.alloc<half_t>(static_cast<std::size_t>(s.m) * s.k);
      auto b = dev.alloc<half_t>(static_cast<std::size_t>(s.k) * s.n);
      auto out = dev.alloc<half_t>(
          std::max<std::size_t>(1, mask_host.values.size()));
      DenseDevice<half_t> da{a, s.m, s.k, s.k, Layout::kRowMajor};
      DenseDevice<half_t> db{b, s.k, s.n, s.k, Layout::kColMajor};
      desc->sddmm_launch(kernels::SddmmCall{dev, da, db, mask, out, {}});
    } else if (kernel == "hgemm_tcu") {
      auto a = dev.alloc<half_t>(static_cast<std::size_t>(s.m) * s.k);
      auto b = dev.alloc<half_t>(static_cast<std::size_t>(s.k) * s.n);
      auto c = dev.alloc<half_t>(static_cast<std::size_t>(s.m) * s.n);
      DenseDevice<half_t> da{a, s.m, s.k, s.k, Layout::kRowMajor};
      DenseDevice<half_t> db{b, s.k, s.n, s.n, Layout::kRowMajor};
      DenseDevice<half_t> dc{c, s.m, s.n, s.n, Layout::kRowMajor};
      kernels::hgemm_tcu(dev, da, db, dc);
    } else if (kernel == "sgemm_fpu") {
      auto a = dev.alloc<float>(static_cast<std::size_t>(s.m) * s.k);
      auto b = dev.alloc<float>(static_cast<std::size_t>(s.k) * s.n);
      auto c = dev.alloc<float>(static_cast<std::size_t>(s.m) * s.n);
      DenseDevice<float> da{a, s.m, s.k, s.k, Layout::kRowMajor};
      DenseDevice<float> db{b, s.k, s.n, s.n, Layout::kRowMajor};
      DenseDevice<float> dc{c, s.m, s.n, s.n, Layout::kRowMajor};
      kernels::sgemm_fpu(dev, da, db, dc);
    } else if (kernel == "sparse_softmax") {
      const Cvs mask_host = make_cvs_mask(s.m, s.n, s.v, sparsity, rng);
      CvsDevice pattern = to_device(dev, mask_host);
      auto in = dev.alloc<half_t>(
          std::max<std::size_t>(1, mask_host.values.size()));
      auto out = dev.alloc<half_t>(
          std::max<std::size_t>(1, mask_host.values.size()));
      kernels::sparse_softmax(dev, pattern, in, out, 1.0f);
    } else if (kernel == "dense_softmax") {
      auto buf = dev.alloc<half_t>(static_cast<std::size_t>(s.m) * s.n);
      DenseDevice<half_t> mat{buf, s.m, s.n, s.n, Layout::kRowMajor};
      kernels::dense_softmax(dev, mat, 1.0f);
    } else {
      return result;  // nothing to run — treated as skipped
    }
    result.ran = true;
    result.reports = sink.num_reports();
  } catch (const CheckError&) {
    // Launch precondition rejected the member shape — consistent with
    // a proof whose corners were all safe-by-rejection.
    result.ran = false;
  }
  return result;
}

struct LintRecord {
  std::string kernel;
  verify::LintFinding finding;
};

void write_lint_json(const std::string& path,
                     std::vector<LintRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const LintRecord& a, const LintRecord& b) {
              if (a.kernel != b.kernel) return a.kernel < b.kernel;
              if (a.finding.rule != b.finding.rule) {
                return a.finding.rule < b.finding.rule;
              }
              return a.finding.site < b.finding.site;
            });
  records.erase(std::unique(records.begin(), records.end(),
                            [](const LintRecord& a, const LintRecord& b) {
                              return a.kernel == b.kernel &&
                                     a.finding.rule == b.finding.rule &&
                                     a.finding.site == b.finding.site;
                            }),
                records.end());
  auto escape = [](const std::string& s) {
    std::string out;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    return out;
  };
  std::ofstream out(path, std::ios::binary);
  out << "{\n  \"schema\": \"vsparse-lint-v1\",\n  \"findings\": [";
  bool first = true;
  for (const LintRecord& rec : records) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"kernel\": \"" << escape(rec.kernel) << "\", \"rule\": \""
        << escape(rec.finding.rule) << "\", \"site\": \""
        << escape(rec.finding.site) << "\", \"detail\": \""
        << escape(rec.finding.detail) << "\"}";
  }
  out << (first ? "]\n}\n" : "\n  ]\n}\n");
}

int run(int argc, char** argv) {
  std::string arch_spec = "all";
  std::string out_path, lint_path;
  bool cross_check = false, quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--arch=", 7) == 0) {
      arch_spec = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--lint=", 7) == 0) {
      lint_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--cross-check") == 0) {
      cross_check = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "static_verify: unknown flag %s\n"
                   "usage: static_verify [--arch=all|NAME] [--out=FILE] "
                   "[--lint=FILE] [--cross-check] [--quiet]\n",
                   argv[i]);
      return 2;
    }
  }

  std::vector<std::string> arches;
  if (arch_spec == "all") {
    for (const gpusim::ArchPreset& preset : gpusim::arch_presets()) {
      arches.push_back(preset.name);
    }
  } else {
    if (gpusim::find_arch_preset(arch_spec) == nullptr) {
      std::fprintf(stderr, "static_verify: unknown preset \"%s\" (%s)\n",
                   arch_spec.c_str(), gpusim::arch_preset_names().c_str());
      return 2;
    }
    arches.push_back(arch_spec);
  }

  const std::vector<Target> targets = verification_targets();
  const std::vector<verify::ShapeClass> classes =
      verify::builtin_shape_classes();

  verify::CertStore store;
  std::vector<LintRecord> lint_records;
  int proved = 0, refuted = 0, unknown = 0;
  int disagreements = 0, checked = 0;

  for (const std::string& arch : arches) {
    const DeviceConfig hw = DeviceConfig::preset(arch);
    for (const Target& target : targets) {
      for (const verify::ShapeClass& cls : classes) {
        std::vector<verify::LintFinding> lints;
        const verify::Verdict verdict =
            verify::verify_kernel(target.contract, cls, hw, &lints);
        for (verify::LintFinding& f : lints) {
          lint_records.push_back({target.name, std::move(f)});
        }
        verify::CertEntry entry;
        entry.kernel = target.name;
        entry.arch = arch;
        entry.cls = cls;
        entry.verdict = verdict.kind;
        entry.counterexample = verdict.counterexample;
        entry.site = verdict.site;
        entry.detail = verdict.detail;
        entry.corners_checked = verdict.corners_checked;
        entry.corners_rejected = verdict.corners_rejected;
        store.put(std::move(entry));
        switch (verdict.kind) {
          case verify::VerdictKind::kProved:
            ++proved;
            break;
          case verify::VerdictKind::kRefuted:
            ++refuted;
            std::fprintf(stderr,
                         "static_verify: REFUTED %s over %s on %s at %s: "
                         "%s (counterexample %s)\n",
                         target.name.c_str(), cls.name.c_str(), arch.c_str(),
                         verdict.site.c_str(), verdict.detail.c_str(),
                         verdict.counterexample.str().c_str());
            break;
          case verify::VerdictKind::kUnknown:
            ++unknown;
            if (!quiet) {
              std::printf("static_verify: unknown %s over %s on %s (%s)\n",
                          target.name.c_str(), cls.name.c_str(), arch.c_str(),
                          verdict.detail.c_str());
            }
            break;
        }
        if (cross_check && verdict.kind == verify::VerdictKind::kProved &&
            verdict.corners_rejected < verdict.corners_checked) {
          const verify::ShapeCorner member = member_shape(cls);
          const CrossCheck cc = run_member(target.name, member, hw);
          if (cc.ran) {
            ++checked;
            if (cc.reports != 0) {
              ++disagreements;
              std::fprintf(
                  stderr,
                  "static_verify: DISAGREEMENT %s over %s on %s: proved "
                  "statically but %llu dynamic sanitizer report(s) on "
                  "member %s\n",
                  target.name.c_str(), cls.name.c_str(), arch.c_str(),
                  static_cast<unsigned long long>(cc.reports),
                  member.str().c_str());
            }
          }
        }
      }
    }
  }

  if (!out_path.empty()) store.save(out_path);
  if (!lint_path.empty()) write_lint_json(lint_path, std::move(lint_records));

  if (!quiet) {
    std::printf(
        "static_verify: %d proved, %d refuted, %d unknown across %zu "
        "preset(s)",
        proved, refuted, unknown, arches.size());
    if (cross_check) {
      std::printf("; cross-checked %d member shape(s), %d disagreement(s)",
                  checked, disagreements);
    }
    std::printf("\n");
  }
  return (refuted == 0 && disagreements == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }

#!/usr/bin/env python3
"""Track simulator throughput across PRs and fail on regression.

The bench drivers end every run with a machine-readable line:

  # throughput: {"sim_ctas":N,"wall_seconds":S,"ctas_per_sec":R,"threads":T,
  #               "threads_source":"flag|env|default","host_cores":C}

Newer drivers also report where the thread count came from and the
host's hardware concurrency; both are copied into recorded entries so
the trajectory is self-describing about what machine shape produced
each number (older stdout without them still parses).

This tool keeps a committed trajectory file (one entry per PR) and
compares a fresh run against the last recorded entry:

  perf_trajectory.py check TRAJ.json --stdout=FILE [--tolerance=0.5]
      Parse FILE's throughput line.  Fail (exit 1) if sim_ctas changed
      (the workload itself drifted — record a new entry deliberately
      instead) or if ctas_per_sec fell below (1 - tolerance) x the last
      entry's.  Wall clock on shared CI runners is noisy, so the default
      tolerance is a generous 50%; the trajectory file still records the
      precise numbers for human trend reading.

  perf_trajectory.py record TRAJ.json --label=LABEL --stdout=FILE
      Append a new entry (same parse), e.g. when a PR legitimately
      changes the workload or lands a perf improvement worth pinning.

Stdlib only — runs anywhere CI has a python3.
"""
import json
import re
import sys

SCHEMA = "vsparse-perf-trajectory-v1"
THROUGHPUT_RE = re.compile(r"^# throughput: (\{.*\})\s*$", re.M)


def parse_throughput(path):
    with open(path) as f:
        text = f.read()
    matches = THROUGHPUT_RE.findall(text)
    if not matches:
        sys.exit(f"FAIL: no '# throughput:' line in {path}")
    rec = json.loads(matches[-1])
    for field in ("sim_ctas", "wall_seconds", "ctas_per_sec", "threads"):
        if field not in rec:
            sys.exit(f"FAIL: throughput line missing {field!r}")
    return rec


def load_trajectory(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"FAIL: {path} schema is {doc.get('schema')!r}, "
                 f"want {SCHEMA!r}")
    if not doc.get("entries"):
        sys.exit(f"FAIL: {path} has no entries")
    return doc


def cmd_check(traj_path, stdout_path, tolerance):
    doc = load_trajectory(traj_path)
    last = doc["entries"][-1]
    rec = parse_throughput(stdout_path)

    if rec["sim_ctas"] != last["sim_ctas"]:
        sys.exit(f"FAIL: workload drifted: run simulated {rec['sim_ctas']} "
                 f"CTAs, trajectory entry {last['label']!r} recorded "
                 f"{last['sim_ctas']} — if intentional, record a new entry")
    floor = last["ctas_per_sec"] * (1.0 - tolerance)
    if rec["ctas_per_sec"] < floor:
        sys.exit(f"FAIL: throughput regression: {rec['ctas_per_sec']:.1f} "
                 f"ctas/s vs recorded {last['ctas_per_sec']:.1f} "
                 f"(floor {floor:.1f} at tolerance {tolerance})")
    print(f"OK: {rec['ctas_per_sec']:.1f} ctas/s, "
          f"{rec['wall_seconds']:.3f}s wall vs {last['label']!r} "
          f"({last['ctas_per_sec']:.1f} ctas/s)")
    return 0


def cmd_record(traj_path, stdout_path, label):
    doc = load_trajectory(traj_path)
    rec = parse_throughput(stdout_path)
    entry = {
        "label": label,
        "sim_ctas": rec["sim_ctas"],
        "wall_seconds": rec["wall_seconds"],
        "ctas_per_sec": rec["ctas_per_sec"],
        "threads": rec["threads"],
    }
    # Provenance fields (newer drivers only): which source set the
    # thread count and how many host cores the recording machine had.
    for field in ("threads_source", "host_cores"):
        if field in rec:
            entry[field] = rec[field]
    doc["entries"].append(entry)
    with open(traj_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"OK: recorded {label!r} ({rec['ctas_per_sec']:.1f} ctas/s)")
    return 0


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    cmd, traj_path = argv[1], argv[2]
    stdout_path = None
    label = None
    tolerance = 0.5
    for arg in argv[3:]:
        if arg.startswith("--stdout="):
            stdout_path = arg.split("=", 1)[1]
        elif arg.startswith("--label="):
            label = arg.split("=", 1)[1]
        elif arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if stdout_path is None:
        print(__doc__, file=sys.stderr)
        return 2
    if cmd == "check":
        return cmd_check(traj_path, stdout_path, tolerance)
    if cmd == "record":
        if label is None:
            sys.exit("FAIL: record needs --label=LABEL")
        return cmd_record(traj_path, stdout_path, label)
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))

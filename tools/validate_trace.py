#!/usr/bin/env python3
"""Validate the bench drivers' --trace=PREFIX exports.

Usage: validate_trace.py PREFIX

Checks PREFIX.perfetto.json against the chrome-trace event format and
PREFIX.metrics.json against the vsparse-metrics-v1 schema, and
cross-checks the two (same launch count, kernel names, durations).
Stdlib only — runs anywhere CI has a python3.
"""
import sys

from vsparse_validate import SANITIZER_KIND_TO_TOOL, check, errors, \
    load_json, report_errors

REQUIRED_COUNTERS = [
    # one per KernelStats field; keep in sync with trace/counters.cpp
    "inst_hmma", "inst_hfma", "inst_ffma", "inst_imad", "inst_iadd3",
    "inst_ldg", "inst_stg", "inst_lds", "inst_sts", "inst_shfl",
    "inst_bar", "inst_cvt", "inst_misc",
    "ldg16", "ldg32", "ldg64", "ldg128",
    "global_load_requests", "global_load_sectors",
    "global_store_requests", "global_store_sectors",
    "l1_sector_hits", "l1_sector_misses",
    "l2_sector_hits", "l2_sector_misses",
    "dram_read_bytes", "dram_write_bytes",
    "smem_load_requests", "smem_store_requests",
    "smem_load_bytes", "smem_store_bytes", "smem_wavefronts",
    "ctas_launched", "warps_launched",
    "faults_injected", "faults_masked", "faults_detected",
]
REQUIRED_DERIVED = [
    "total_instructions", "math_instructions", "bytes_l2_to_l1",
    "sectors_per_request", "smem_to_global_load_ratio",
]
def validate_metrics(path):
    doc = load_json(path)
    if doc is None:
        return []
    check(doc.get("schema") == "vsparse-metrics-v1",
          f"schema is {doc.get('schema')!r}, want vsparse-metrics-v1")
    launches = doc.get("launches", [])
    check(doc.get("num_launches") == len(launches),
          "num_launches disagrees with the launches array")
    check(len(launches) > 0, "metrics export contains no launches")
    for i, launch in enumerate(launches):
        where = f"launch {i}"
        check(launch.get("index") == i, f"{where}: bad index")
        check(isinstance(launch.get("kernel"), str), f"{where}: no kernel")
        for key in ("grid", "cta_threads", "num_sms", "duration_cycles"):
            check(isinstance(launch.get(key), int) and launch[key] >= 0,
                  f"{where}: bad {key}")
        check(launch.get("grid", 0) > 0, f"{where}: grid must be positive")
        check(isinstance(launch.get("aborted"), bool), f"{where}: no aborted")
        events = launch.get("events", {})
        by_kind = events.get("by_kind", {})
        check(isinstance(events.get("total"), int), f"{where}: no event total")
        check(sum(by_kind.values()) == events.get("total"),
              f"{where}: by_kind does not sum to total")
        check(by_kind.get("kernel_begin") == 1, f"{where}: kernel_begin != 1")
        check(by_kind.get("kernel_end") == 1, f"{where}: kernel_end != 1")
        counters = launch.get("counters", {})
        for name in REQUIRED_COUNTERS:
            check(isinstance(counters.get(name), int),
                  f"{where}: counter {name} missing")
        derived = counters.get("derived", {})
        for name in REQUIRED_DERIVED:
            check(isinstance(derived.get(name), (int, float)),
                  f"{where}: derived {name} missing")
        if not launch.get("aborted"):
            check(by_kind.get("cta_begin") == launch.get("grid"),
                  f"{where}: cta_begin count != grid")
            check(by_kind.get("cta_begin") == by_kind.get("cta_end"),
                  f"{where}: unbalanced cta_begin/cta_end")
            check(counters.get("ctas_launched") == launch.get("grid"),
                  f"{where}: ctas_launched != grid")
    return launches


def validate_perfetto(path):
    doc = load_json(path)
    if doc is None:
        return {}
    events = doc.get("traceEvents")
    check(isinstance(events, list) and len(events) > 0,
          "perfetto export has no traceEvents")
    launches = {}  # pid -> {"name": ..., "spans": [...]}
    open_ctas = {}  # (pid, tid) -> B-stack depth
    for ev in events:
        for key in ("ph", "pid"):
            check(key in ev, f"event lacks {key}: {ev}")
        ph, pid = ev.get("ph"), ev.get("pid")
        entry = launches.setdefault(
            pid, {"name": None, "spans": [], "sanitizer_events": 0})
        if ph == "M":
            if ev.get("name") == "process_name":
                entry["name"] = ev["args"]["name"]
        elif ph == "X":
            check(ev.get("ts") == 0, "kernel span must start at ts=0")
            check(isinstance(ev.get("dur"), int), "kernel span has no dur")
            check("grid" in ev.get("args", {}), "kernel span lacks args.grid")
            entry["spans"].append(ev)
        elif ph == "B":
            open_ctas[(pid, ev.get("tid"))] = \
                open_ctas.get((pid, ev.get("tid")), 0) + 1
        elif ph == "E":
            key = (pid, ev.get("tid"))
            check(open_ctas.get(key, 0) > 0,
                  f"E without matching B on pid={pid} tid={ev.get('tid')}")
            open_ctas[key] = open_ctas.get(key, 0) - 1
        elif ph == "i":
            check(ev.get("s") == "t", "instant events must be thread-scoped")
            check(isinstance(ev.get("name"), str), "instant without a name")
            if ev.get("name") == "sanitizer":
                args = ev.get("args", {})
                where = f"sanitizer instant on pid={pid}"
                check(isinstance(args.get("cta"), int), f"{where}: bad cta")
                check(isinstance(args.get("warp"), int), f"{where}: bad warp")
                kind = args.get("kind")
                check(kind in SANITIZER_KIND_TO_TOOL,
                      f"{where}: unknown hazard kind {kind!r}")
                check(args.get("tool") == SANITIZER_KIND_TO_TOOL.get(kind),
                      f"{where}: tool {args.get('tool')!r} does not own "
                      f"kind {kind!r}")
                entry["sanitizer_events"] += 1
        else:
            check(False, f"unexpected phase {ph!r}")
    for pid, entry in launches.items():
        check(entry["name"] is not None, f"pid {pid}: no process_name")
        check(len(entry["spans"]) == 1, f"pid {pid}: want exactly 1 kernel span")
    return launches


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    prefix = sys.argv[1]
    metrics = validate_metrics(prefix + ".metrics.json")
    perfetto = validate_perfetto(prefix + ".perfetto.json")

    check(len(perfetto) == len(metrics),
          f"launch count disagrees: perfetto {len(perfetto)}, "
          f"metrics {len(metrics)}")
    for i, launch in enumerate(metrics):
        if i not in perfetto:
            check(False, f"launch {i} missing from perfetto export")
            continue
        span = perfetto[i]["spans"][0] if perfetto[i]["spans"] else {}
        check(span.get("name") == launch.get("kernel"),
              f"launch {i}: kernel name disagrees across exports")
        check(span.get("dur") == launch.get("duration_cycles"),
              f"launch {i}: duration disagrees across exports")
        want_san = launch["events"]["by_kind"].get("sanitizer", 0)
        check(perfetto[i]["sanitizer_events"] == want_san,
              f"launch {i}: sanitizer events disagree across exports "
              f"(perfetto {perfetto[i]['sanitizer_events']}, "
              f"metrics {want_san})")

    if errors():
        sys.exit(report_errors(prefix="validate_trace: "))
    total = sum(launch["events"]["total"] for launch in metrics)
    print(f"validate_trace: OK: {len(metrics)} launches, "
          f"{total} events under prefix {prefix}")


if __name__ == "__main__":
    main()

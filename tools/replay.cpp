// Standalone flight-recorder replay — re-executes vsparse-repro-v1
// bundles captured by the fleet scheduler and diffs failure signatures.
//
//   replay FILE [--bundle=K] [--quiet]
//
// FILE is either a whole recorder document
// ({"schema":"vsparse-repro-v1","bundles":[...]}) or a single bare
// bundle object.  Every selected bundle is re-executed on a fresh
// device (serve::replay_bundle): the recorded retry policy, memory
// quota, quarantine gate, and device fault state are rebuilt, the
// request re-runs through execute_request — the same code path the
// fleet ran — and the resulting attempt-trail signature is compared
// byte-for-byte against the captured one.
//
// Exit 0: every replayed signature matched.  Exit 1: at least one
// diverged (prints both signatures).  Exit 2: unreadable / malformed
// input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vsparse/serve/recorder.hpp"

namespace {

int run(int argc, char** argv) {
  const char* path = nullptr;
  long only = -1;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bundle=", 9) == 0) {
      only = std::strtol(argv[i] + 9, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] != '-') {
      path = argv[i];
    } else {
      std::fprintf(stderr, "replay: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (!path) {
    std::fprintf(stderr, "usage: replay FILE [--bundle=K] [--quiet]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  std::vector<vsparse::serve::ReproBundle> bundles;
  try {
    bundles = vsparse::serve::parse_repro_json(text.str());
  } catch (const vsparse::Error& e) {
    std::fprintf(stderr, "replay: malformed bundle: %s\n", e.what());
    return 2;
  }
  if (bundles.empty()) {
    std::printf("# replay: {\"bundles\":0,\"matched\":0,\"diverged\":0}\n");
    return 0;
  }

  std::uint64_t matched = 0, diverged = 0, replayed = 0;
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    if (only >= 0 && static_cast<long>(i) != only) continue;
    const vsparse::serve::ReproBundle& b = bundles[i];
    const vsparse::serve::ReplayResult r = vsparse::serve::replay_bundle(b);
    ++replayed;
    if (r.signature_match) {
      ++matched;
      if (!quiet) {
        std::printf("# replay-bundle: {\"index\":%zu,\"request_id\":%llu,"
                    "\"device\":%d,\"match\":true}\n",
                    i, static_cast<unsigned long long>(b.request_id),
                    b.device);
      }
    } else {
      ++diverged;
      std::printf("# replay-bundle: {\"index\":%zu,\"request_id\":%llu,"
                  "\"device\":%d,\"match\":false}\n",
                  i, static_cast<unsigned long long>(b.request_id), b.device);
      std::printf("#   expected: %s\n", r.expected_signature.c_str());
      std::printf("#   got:      %s\n", r.got_signature.c_str());
    }
  }
  if (only >= 0 && replayed == 0) {
    std::fprintf(stderr, "replay: --bundle=%ld out of range (%zu bundles)\n",
                 only, bundles.size());
    return 2;
  }
  std::printf("# replay: {\"bundles\":%llu,\"matched\":%llu,"
              "\"diverged\":%llu}\n",
              static_cast<unsigned long long>(replayed),
              static_cast<unsigned long long>(matched),
              static_cast<unsigned long long>(diverged));
  return diverged == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }

#!/usr/bin/env python3
"""Validate a vsparse-policy-v1 dispatch-policy cache file.

Usage: validate_policy_cache.py FILE [--min-entries=N] [--expect-arch=A,B]
       [--expect-multi-kernel]

Checks the JSON the autotune_policy driver writes (and PolicyCache
::to_json emits): version tag, entry schema, canonical key format, the
kernel names against the registry's stable exports, op/kernel
agreement, key uniqueness, and positive finite cycles.  With
--expect-multi-kernel it additionally requires the cache to name at
least two distinct kernels per op — the whole point of shape-adaptive
dispatch is that one kernel does not win everywhere.  Stdlib only —
runs anywhere CI has a python3.
"""
import math
import re
import sys

from vsparse_validate import check, check_schema, errors, load_json, \
    report_errors

VERSION = "vsparse-policy-v1"

# Stable dispatchable kernel names; keep in sync with the KernelDesc
# table in src/vsparse/kernels/registry.cpp (ladder-only kernels are
# never valid policy targets).
DISPATCHABLE = {
    "spmm": {"spmm_octet", "spmm_wmma_warp", "spmm_fpu_subwarp",
             "spmm_csr_fine"},
    "sddmm": {"sddmm_octet", "sddmm_wmma_warp", "sddmm_fpu_subwarp",
              "sddmm_csr_fine"},
}

KEY_RE = re.compile(r"^(spmm|sddmm)\|([a-z0-9-]+)\|m(\d+)k(\d+)n(\d+)d(\d+)v(\d+)$")


def validate(path, min_entries, expect_arches, expect_multi_kernel):
    doc = load_json(path)
    if doc is None:
        return 0

    check_schema(doc, VERSION, key="version")
    entries = doc.get("entries")
    check(isinstance(entries, list), "entries must be a list")
    if not isinstance(entries, list):
        return

    check(len(entries) >= min_entries,
          f"{len(entries)} entries, want >= {min_entries}")

    seen_keys = set()
    seen_arches = set()
    kernels_per_op = {"spmm": set(), "sddmm": set()}
    for i, entry in enumerate(entries):
        where = f"entries[{i}]"
        if not isinstance(entry, dict):
            check(False, f"{where} is not an object")
            continue
        check(set(entry) == {"key", "kernel", "cycles"},
              f"{where} fields are {sorted(entry)}, want key/kernel/cycles")
        key = entry.get("key", "")
        match = KEY_RE.match(key)
        check(match, f"{where} malformed key {key!r}")
        check(key not in seen_keys, f"{where} duplicate key {key!r}")
        seen_keys.add(key)

        kernel = entry.get("kernel", "")
        cycles = entry.get("cycles")
        check(isinstance(cycles, (int, float)) and not isinstance(cycles, bool)
              and math.isfinite(cycles) and cycles > 0,
              f"{where} cycles {cycles!r} must be a positive finite number")
        if match:
            op, arch, _m, _k, _n, _d, v = match.groups()
            seen_arches.add(arch)
            check(kernel in DISPATCHABLE[op],
                  f"{where} kernel {kernel!r} is not a dispatchable {op} "
                  f"kernel")
            kernels_per_op[op].add(kernel)
            check(int(v) in (1, 2, 4, 8),
                  f"{where} V={v} outside the CVS granularities")

    for arch in expect_arches:
        check(arch in seen_arches,
              f"no entries for arch {arch!r} (saw {sorted(seen_arches)})")
    if expect_multi_kernel:
        for op, kernels in kernels_per_op.items():
            if kernels:  # only ops the cache actually covers
                check(len(kernels) >= 2,
                      f"{op} entries all pick {sorted(kernels)}; a useful "
                      f"policy names >= 2 kernels")

    return len(entries)


def main(argv):
    path = None
    min_entries = 1
    expect_arches = []
    expect_multi_kernel = False
    for arg in argv[1:]:
        if arg.startswith("--min-entries="):
            min_entries = int(arg.split("=", 1)[1])
        elif arg.startswith("--expect-arch="):
            expect_arches = [a for a in arg.split("=", 1)[1].split(",") if a]
        elif arg == "--expect-multi-kernel":
            expect_multi_kernel = True
        elif path is None:
            path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    n = validate(path, min_entries, expect_arches, expect_multi_kernel)
    if errors():
        return report_errors()
    print(f"OK: {path} ({n} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

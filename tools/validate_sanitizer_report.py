#!/usr/bin/env python3
"""Validate a vsparse-sanitizer-v1 report (the --sanitize-report export).

Usage:
  python3 tools/validate_sanitizer_report.py REPORT.json [--expect-clean]

Checks the schema structurally (field presence, types, enum values,
tool/kind consistency, cross-checked totals) so CI catches an exporter
regression the moment it lands.  With --expect-clean, additionally
fails if any launch produced a report, suppressed a report, or
aborted — the shipped-kernels-are-hazard-free gate.

Stdlib only; exit code 0 on success, 1 on validation failure.
"""

import argparse
import sys

from vsparse_validate import SANITIZER_KIND_TO_TOOL as KIND_TO_TOOL
from vsparse_validate import SANITIZER_TOOLS as TOOLS
from vsparse_validate import check as expect
from vsparse_validate import errors, is_uint, load_json, report_errors

SCHEMA = "vsparse-sanitizer-v1"


def check_site(site, where):
    if not expect(isinstance(site, dict), f"{where}: site is not an object"):
        return
    warp = site.get("warp")
    expect(isinstance(warp, int) and not isinstance(warp, bool) and warp >= -1,
           f"{where}: bad warp {warp!r} (int >= -1 required)")
    expect(isinstance(site.get("op"), str) and site.get("op"),
           f"{where}: bad op {site.get('op')!r}")
    expect(is_uint(site.get("cta_op")),
           f"{where}: bad cta_op {site.get('cta_op')!r}")


def check_report(rep, where):
    if not expect(isinstance(rep, dict), f"{where}: report is not an object"):
        return None
    kind = rep.get("kind")
    if expect(kind in KIND_TO_TOOL, f"{where}: unknown kind {kind!r}"):
        expect(rep.get("tool") == KIND_TO_TOOL[kind],
               f"{where}: tool {rep.get('tool')!r} does not own kind {kind!r}")
    else:
        expect(rep.get("tool") in TOOLS,
               f"{where}: unknown tool {rep.get('tool')!r}")
    expect(is_uint(rep.get("sm")), f"{where}: bad sm {rep.get('sm')!r}")
    expect(is_uint(rep.get("cta")), f"{where}: bad cta {rep.get('cta')!r}")
    expect(is_uint(rep.get("addr")), f"{where}: bad addr {rep.get('addr')!r}")
    expect(is_uint(rep.get("bytes")) and rep.get("bytes") >= 1,
           f"{where}: bad bytes {rep.get('bytes')!r} (>= 1 required)")
    expect(is_uint(rep.get("epoch")), f"{where}: bad epoch {rep.get('epoch')!r}")
    check_site(rep.get("first"), f"{where}.first")
    check_site(rep.get("second"), f"{where}.second")
    second = rep.get("second")
    if isinstance(second, dict):
        expect(isinstance(second.get("warp"), int) and second.get("warp") >= 0,
               f"{where}: second site must name a warp (got "
               f"{second.get('warp')!r})")
    expect(isinstance(rep.get("detail"), str),
           f"{where}: detail is not a string")
    return rep.get("tool")


def check_launch(launch, i):
    where = f"launches[{i}]"
    if not expect(isinstance(launch, dict), f"{where}: not an object"):
        return [], 0, False
    expect(launch.get("index") == i,
           f"{where}: index {launch.get('index')!r} != position {i}")
    expect(isinstance(launch.get("kernel"), str),
           f"{where}: kernel is not a string")
    grid = launch.get("grid")
    expect(is_uint(grid) and grid >= 1, f"{where}: bad grid {grid!r}")
    ctat = launch.get("cta_threads")
    expect(is_uint(ctat) and ctat >= 32 and ctat % 32 == 0,
           f"{where}: bad cta_threads {ctat!r} (positive multiple of 32)")
    expect(is_uint(launch.get("smem_bytes")),
           f"{where}: bad smem_bytes {launch.get('smem_bytes')!r}")
    expect(isinstance(launch.get("aborted"), bool),
           f"{where}: aborted is not a bool")
    expect(is_uint(launch.get("suppressed")),
           f"{where}: bad suppressed {launch.get('suppressed')!r}")
    if "span_fastpath_ops" in launch:
        expect(is_uint(launch.get("span_fastpath_ops")),
               f"{where}: bad span_fastpath_ops "
               f"{launch.get('span_fastpath_ops')!r}")
    reports = launch.get("reports")
    tools = []
    if expect(isinstance(reports, list), f"{where}: reports is not a list"):
        for j, rep in enumerate(reports):
            tool = check_report(rep, f"{where}.reports[{j}]")
            if tool in TOOLS:
                tools.append(tool)
    return tools, launch.get("suppressed") or 0, bool(launch.get("aborted"))


def validate(doc, expect_clean):
    if not expect(isinstance(doc, dict), "top level is not an object"):
        return
    expect(doc.get("schema") == SCHEMA,
           f"schema {doc.get('schema')!r} != {SCHEMA!r}")
    launches = doc.get("launches")
    if not expect(isinstance(launches, list), "launches is not a list"):
        return
    expect(doc.get("num_launches") == len(launches),
           f"num_launches {doc.get('num_launches')!r} != "
           f"{len(launches)} launches present")

    all_tools = []
    total_suppressed = 0
    any_aborted = False
    for i, launch in enumerate(launches):
        tools, suppressed, aborted = check_launch(launch, i)
        all_tools.extend(tools)
        total_suppressed += suppressed
        any_aborted = any_aborted or aborted

    expect(doc.get("num_reports") == len(all_tools),
           f"num_reports {doc.get('num_reports')!r} != "
           f"{len(all_tools)} reports present")
    expect(doc.get("num_suppressed") == total_suppressed,
           f"num_suppressed {doc.get('num_suppressed')!r} != "
           f"sum of per-launch suppressed {total_suppressed}")
    by_tool = doc.get("by_tool")
    if expect(isinstance(by_tool, dict), "by_tool is not an object"):
        expect(sorted(by_tool) == sorted(TOOLS),
               f"by_tool keys {sorted(by_tool)} != {sorted(TOOLS)}")
        for tool in TOOLS:
            want = sum(1 for t in all_tools if t == tool)
            expect(by_tool.get(tool) == want,
                   f"by_tool[{tool!r}] {by_tool.get(tool)!r} != "
                   f"{want} reports counted")

    if expect_clean:
        expect(len(all_tools) == 0,
               f"--expect-clean: {len(all_tools)} hazard report(s) present")
        expect(total_suppressed == 0,
               f"--expect-clean: {total_suppressed} suppressed report(s)")
        expect(not any_aborted, "--expect-clean: an aborted launch is present")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="path to the vsparse-sanitizer-v1 JSON")
    ap.add_argument("--expect-clean", action="store_true",
                    help="fail if any report/suppression/abort is present")
    args = ap.parse_args()

    doc = load_json(args.report)
    if doc is not None:
        validate(doc, args.expect_clean)

    if errors():
        code = report_errors(file=sys.stdout)
        print(f"{args.report}: {len(errors())} validation error(s)")
        return code
    n = doc.get("num_reports", 0)
    clean = " (clean)" if args.expect_clean else ""
    print(f"OK: {args.report}: {doc.get('num_launches')} launches, "
          f"{n} reports{clean}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

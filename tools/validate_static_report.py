#!/usr/bin/env python3
"""Validate the static verifier's exports.

Usage: validate_static_report.py CERTS.json [--lint=LINT.json]
       [--expect-no-refuted] [--expect-arch=A,B] [--expect-kernels=N]
       [--expect-classes=N]

Checks the vsparse-static-v1 certificate store the static_verify tool
writes (version tag, entry schema, shape-class well-formedness, verdict
enum, counterexample presence/membership on refuted entries, corner
accounting, (kernel, arch, class) uniqueness, size caps matching the
C++ loader) and, with --lint, the vsparse-lint-v1 findings file (known
rule names, non-empty sites, per-kernel dedup).  --expect-no-refuted is
the CI gate: every shipped kernel must be proved (or safe-by-rejection)
on every preset.  --expect-arch requires coverage of the named presets;
--expect-kernels / --expect-classes put a floor on how much of the
registry the store covers, so a silently shrunk verification sweep
fails loudly instead of green.  Stdlib only — runs anywhere CI has a
python3.
"""
import sys

from vsparse_validate import check, check_schema, errors, is_number, \
    is_uint, load_json, report_errors

VERSION = "vsparse-static-v1"
LINT_SCHEMA = "vsparse-lint-v1"
VERDICTS = {"proved", "refuted", "unknown"}
LINT_RULES = {"per-lane-span", "slack-dependent-tail", "span-self-divert",
              "descriptor-invalid"}
# Mirror the loader caps in gpusim/verify/certs.hpp: a store the
# validator passes must also load in-process.
MAX_ENTRIES = 65536
MAX_STRING = 512


def check_dim(dim, where):
    if not check(isinstance(dim, dict), f"{where} is not an object"):
        return None
    lo, hi, mod = dim.get("lo"), dim.get("hi"), dim.get("mod")
    check(is_uint(lo), f"{where}.lo {lo!r} must be a non-negative int")
    check(is_uint(hi) and (not is_uint(lo) or hi >= lo),
          f"{where}.hi {hi!r} must be an int >= lo")
    check(is_uint(mod) and mod >= 1, f"{where}.mod {mod!r} must be >= 1")
    return dim


def check_class(cls, where):
    if not check(isinstance(cls, dict), f"{where} is not an object"):
        return None
    name = cls.get("name")
    check(isinstance(name, str) and 0 < len(name) <= MAX_STRING,
          f"{where}.name {name!r} must be a non-empty string")
    v = cls.get("v")
    check(v in (1, 2, 4, 8), f"{where}.v {v!r} outside CVS granularities")
    for dim in ("m", "k", "n"):
        check_dim(cls.get(dim), f"{where}.{dim}")
    d_lo, d_hi = cls.get("d_lo"), cls.get("d_hi")
    check(is_number(d_lo) and is_number(d_hi) and 0.0 <= d_lo <= d_hi <= 1.0,
          f"{where}: density range [{d_lo!r}, {d_hi!r}] invalid")
    return cls


def shape_in_class(shape, cls):
    """Mirror ShapeClass::contains for the counterexample check."""
    def dim_ok(x, dim):
        return (isinstance(dim, dict) and is_uint(x)
                and dim.get("lo", 0) <= x <= dim.get("hi", 0)
                and x % max(1, dim.get("mod", 1)) == 0)
    return (dim_ok(shape.get("m"), cls.get("m"))
            and dim_ok(shape.get("k"), cls.get("k"))
            and dim_ok(shape.get("n"), cls.get("n"))
            and shape.get("v") == cls.get("v")
            and is_number(shape.get("density"))
            and cls.get("d_lo", 0.0) - 1e-9 <= shape["density"]
            <= cls.get("d_hi", 1.0) + 1e-9)


def check_entry(entry, i, seen):
    where = f"entries[{i}]"
    if not check(isinstance(entry, dict), f"{where} is not an object"):
        return None
    for field in ("kernel", "arch"):
        v = entry.get(field)
        check(isinstance(v, str) and 0 < len(v) <= MAX_STRING,
              f"{where}.{field} {v!r} must be a non-empty string")
    cls = check_class(entry.get("class"), f"{where}.class")
    verdict = entry.get("verdict")
    check(verdict in VERDICTS, f"{where}.verdict {verdict!r} unknown")

    key = (entry.get("kernel"), entry.get("arch"),
           (cls or {}).get("name"))
    check(key not in seen,
          f"{where}: duplicate (kernel, arch, class) {key}")
    seen.add(key)

    checked = entry.get("corners_checked")
    rejected = entry.get("corners_rejected")
    check(is_uint(checked), f"{where}.corners_checked {checked!r}")
    check(is_uint(rejected) and (not is_uint(checked) or rejected <= checked),
          f"{where}.corners_rejected {rejected!r} must be <= corners_checked")
    if verdict == "proved":
        check(is_uint(checked) and checked >= 1,
              f"{where}: proved with no corners checked")

    cex = entry.get("counterexample")
    if verdict == "refuted":
        if check(isinstance(cex, dict),
                 f"{where}: refuted entry lacks a counterexample"):
            fields_ok = True
            for field in ("m", "k", "n", "v"):
                fields_ok &= check(
                    is_uint(cex.get(field)),
                    f"{where}.counterexample.{field} "
                    f"{cex.get(field)!r} must be a non-negative int")
            fields_ok &= check(is_number(cex.get("density")),
                               f"{where}.counterexample.density missing")
            if cls is not None and fields_ok:
                check(shape_in_class(cex, cls),
                      f"{where}: counterexample {cex} is not a member of "
                      f"class {cls.get('name')!r}")
        check(isinstance(entry.get("site"), str) and entry.get("site"),
              f"{where}: refuted entry lacks a site")
    else:
        check(cex is None,
              f"{where}: {verdict} entry carries a counterexample")
    return entry


def validate_certs(doc, expect):
    check_schema(doc, VERSION, key="version")
    entries = doc.get("entries")
    if not check(isinstance(entries, list), "entries must be a list"):
        return
    check(len(entries) <= MAX_ENTRIES,
          f"{len(entries)} entries exceed the loader cap {MAX_ENTRIES}")

    seen = set()
    kernels, arches, classes = set(), set(), set()
    refuted = []
    for i, entry in enumerate(entries):
        e = check_entry(entry, i, seen)
        if e is None:
            continue
        kernels.add(e.get("kernel"))
        arches.add(e.get("arch"))
        if isinstance(e.get("class"), dict):
            classes.add(e["class"].get("name"))
        if e.get("verdict") == "refuted":
            refuted.append(e)

    # Every kernel must be covered on every arch for every class the
    # store mentions — a ragged product means the sweep was cut short.
    want = len(kernels) * len(arches) * len(classes)
    check(len(entries) == want,
          f"{len(entries)} entries != {len(kernels)} kernels x "
          f"{len(arches)} arches x {len(classes)} classes = {want}")

    for arch in expect["arches"]:
        check(arch in arches,
              f"no entries for arch {arch!r} (saw {sorted(arches)})")
    if expect["kernels"]:
        check(len(kernels) >= expect["kernels"],
              f"{len(kernels)} kernels covered, want >= {expect['kernels']}")
    if expect["classes"]:
        check(len(classes) >= expect["classes"],
              f"{len(classes)} classes covered, want >= {expect['classes']}")
    if expect["no_refuted"]:
        for e in refuted:
            check(False,
                  f"--expect-no-refuted: {e.get('kernel')} refuted over "
                  f"{e.get('class', {}).get('name')!r} on {e.get('arch')} "
                  f"at {e.get('site')}: counterexample "
                  f"{e.get('counterexample')}")
    return len(entries), len(refuted)


def validate_lint(doc):
    check_schema(doc, LINT_SCHEMA)
    findings = doc.get("findings")
    if not check(isinstance(findings, list), "lint findings must be a list"):
        return 0
    seen = set()
    for i, f in enumerate(findings):
        where = f"findings[{i}]"
        if not check(isinstance(f, dict), f"{where} is not an object"):
            continue
        check(isinstance(f.get("kernel"), str) and f.get("kernel"),
              f"{where}.kernel missing")
        check(f.get("rule") in LINT_RULES,
              f"{where}.rule {f.get('rule')!r} unknown "
              f"(want one of {sorted(LINT_RULES)})")
        check(isinstance(f.get("site"), str) and f.get("site"),
              f"{where}.site missing")
        check(isinstance(f.get("detail"), str), f"{where}.detail missing")
        key = (f.get("kernel"), f.get("rule"), f.get("site"))
        check(key not in seen, f"{where}: duplicate finding {key}")
        seen.add(key)
    return len(findings)


def main(argv):
    path = None
    lint_path = None
    expect = {"no_refuted": False, "arches": [], "kernels": 0, "classes": 0}
    for arg in argv[1:]:
        if arg == "--expect-no-refuted":
            expect["no_refuted"] = True
        elif arg.startswith("--expect-arch="):
            expect["arches"] = [a for a in arg.split("=", 1)[1].split(",")
                                if a]
        elif arg.startswith("--expect-kernels="):
            expect["kernels"] = int(arg.split("=", 1)[1])
        elif arg.startswith("--expect-classes="):
            expect["classes"] = int(arg.split("=", 1)[1])
        elif arg.startswith("--lint="):
            lint_path = arg.split("=", 1)[1]
        elif path is None:
            path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    n_entries = n_refuted = n_lint = 0
    doc = load_json(path)
    if doc is not None and check(isinstance(doc, dict),
                                 "top level is not an object"):
        result = validate_certs(doc, expect)
        if result is not None:
            n_entries, n_refuted = result
    if lint_path is not None:
        lint_doc = load_json(lint_path)
        if lint_doc is not None and check(isinstance(lint_doc, dict),
                                          "lint top level is not an object"):
            n_lint = validate_lint(lint_doc)

    if errors():
        return report_errors(prefix="validate_static_report: ")
    lint_note = f", {n_lint} lint finding(s)" if lint_path else ""
    print(f"OK: {path}: {n_entries} certificates, {n_refuted} refuted"
          f"{lint_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// The multi-tenant serving load driver — replays a seeded open-loop
// request trace (SpMM / SDDMM / sparse attention from three tenants)
// through the fleet scheduler (serve/scheduler.hpp): EDF scheduling
// under deadline SLOs, per-tenant quotas and backlog bounds, kernel
// circuit breakers, device-level fault domains with failover and
// hedging, and optional chaos storms composed from the fault layer.
//
//   --requests=N        trace length (default 200)
//   --seed=S            trace + storm seed (default 2021)
//   --gap=TICKS         mean inter-arrival gap (default 30000)
//   --tenants=LIST      comma-separated subset of the default tenant
//                       mix (interactive,analytics,background)
//   --chaos             compose seeded chaos storms over the trace
//   --storms=N          storms per chaos kind (default 2)
//   --devices=N         fleet size (default 1)
//   --device-chaos      compose seeded whole-device storms (wedge /
//                       brownout / flap / death) over the trace
//   --device-storms=N   device storms per kind (default 1)
//   --no-hedge          disable hedged launches
//   --hedge-margin=P    hedge when remaining margin < P% of the SLO
//   --drain=D:B:E       operator drain of device D over ticks [B, E);
//                       repeatable
//   --verify            fault-free cross-check: every completed request
//                       is compared bit-for-bit (and SM-local-counter-
//                       for-counter) against direct unsupervised
//                       dispatch on a reference device
//   --retries=K         max retries per ladder rung (default 2)
//   --report=FILE       write the vsparse-load-v2 JSON report
//   --serve-report=FILE write the per-request vsparse-serve-v1 artifact
//   --repro=FILE        write the vsparse-repro-v1 flight-recorder
//                       artifact (replay with tools/replay)
//   --threads=N         engine threads (determinism demo: the report
//                       and every summary line must not change)
//
// Malformed or out-of-range flags print one structured
//   # case-error: {"flag":...,"error":...}
// line and exit 2 — never a silent fall-back to a default.
//
// Everything except the `# throughput:` line is deterministic: same
// seed and config give byte-identical output at any --threads=N.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "vsparse/bench/runner.hpp"
#include "vsparse/serve/scheduler.hpp"

namespace vsparse::bench {
namespace {

/// Structured CLI rejection: one machine-readable line, exit 2 (the
/// shell convention for usage errors; 1 is reserved for run failures).
[[noreturn]] void case_error(const char* flag, const std::string& error) {
  std::printf("# case-error: {\"flag\":\"%s\",\"error\":\"%s\"}\n", flag,
              error.c_str());
  std::exit(2);
}

/// Strict base-10 u64 parse: the whole token must be digits, no sign,
/// no overflow.  strtoull alone accepts "-1" (wraps) and "12abc"
/// (stops early) — exactly the UB-ish defaults this driver rejects.
bool parse_u64(const char* text, std::uint64_t& out) {
  if (text[0] == '\0' || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  out = value;
  return true;
}

std::uint64_t flag_u64(int argc, char** argv, const char* name,
                       std::uint64_t fallback, std::uint64_t min,
                       std::uint64_t max) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) != 0 || argv[i][len] != '=') continue;
    std::uint64_t value = 0;
    if (!parse_u64(argv[i] + len + 1, value)) {
      case_error(name, std::string("not an unsigned integer: \\\"") +
                           (argv[i] + len + 1) + "\\\"");
    }
    if (value < min || value > max) {
      case_error(name, "out of range [" + std::to_string(min) + ", " +
                           std::to_string(max) + "]: " +
                           std::to_string(value));
    }
    return value;
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

const char* flag_str(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

/// --tenants=a,b,c selects a subset of the default mix by name; an
/// empty or unknown selection is a config error, not an empty run.
std::vector<serve::TenantSpec> parse_tenants(const char* list) {
  const std::vector<serve::TenantSpec> defaults = serve::default_tenants();
  std::vector<serve::TenantSpec> picked;
  std::string text(list);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string name =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!name.empty()) {
      bool found = false;
      for (const serve::TenantSpec& t : defaults) {
        if (t.name == name) {
          picked.push_back(t);
          found = true;
          break;
        }
      }
      if (!found) case_error("--tenants", "unknown tenant: " + name);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (picked.empty()) case_error("--tenants", "tenant set must not be empty");
  return picked;
}

/// --drain=DEV:BEGIN:END, repeatable.
std::vector<serve::DrainWindow> parse_drains(int argc, char** argv,
                                             int devices) {
  std::vector<serve::DrainWindow> drains;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--drain=", 8) != 0) continue;
    const std::string text(argv[i] + 8);
    const std::size_t c1 = text.find(':');
    const std::size_t c2 = c1 == std::string::npos ? c1 : text.find(':', c1 + 1);
    std::uint64_t dev = 0, begin = 0, end = 0;
    if (c2 == std::string::npos ||
        !parse_u64(text.substr(0, c1).c_str(), dev) ||
        !parse_u64(text.substr(c1 + 1, c2 - c1 - 1).c_str(), begin) ||
        !parse_u64(text.substr(c2 + 1).c_str(), end)) {
      case_error("--drain", "expected DEV:BEGIN:END, got \\\"" + text + "\\\"");
    }
    if (dev >= static_cast<std::uint64_t>(devices)) {
      case_error("--drain", "device " + std::to_string(dev) +
                                " outside fleet of " + std::to_string(devices));
    }
    if (begin >= end) case_error("--drain", "window must have BEGIN < END");
    drains.push_back({static_cast<int>(dev), begin, end});
  }
  return drains;
}

/// Any unrecognized --flag is a config error.  The allow-list covers
/// this driver plus everything DriverSession consumes.
void reject_unknown_flags(int argc, char** argv) {
  static const char* const known[] = {
      "--requests=", "--seed=",          "--gap=",          "--tenants=",
      "--storms=",   "--devices=",       "--device-storms=", "--hedge-margin=",
      "--drain=",    "--retries=",       "--report=",       "--serve-report=",
      "--repro=",    "--threads=",       "--arch=",         "--trace=",
      "--trace-sample=", "--sanitize=",  "--sanitize-report="};
  static const char* const known_bare[] = {"--chaos", "--device-chaos",
                                           "--no-hedge", "--verify",
                                           "--sanitize"};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    bool ok = false;
    for (const char* k : known) {
      if (std::strncmp(argv[i], k, std::strlen(k)) == 0) ok = true;
    }
    for (const char* k : known_bare) {
      if (std::strcmp(argv[i], k) == 0) ok = true;
    }
    if (!ok) case_error(argv[i], "unknown flag");
  }
}

void print_tenant(const char* tag, const serve::TenantStats& s) {
  std::printf(
      "# %s: {\"name\":\"%s\",\"submitted\":%llu,\"completed\":%llu,"
      "\"slo_met\":%llu,\"deadline_miss\":%llu,\"shed_queue\":%llu,"
      "\"shed_deadline\":%llu,\"rejected\":%llu,\"failed\":%llu,"
      "\"p50_latency_ticks\":%llu,\"p99_latency_ticks\":%llu}\n",
      tag, s.name.c_str(), static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.slo_met),
      static_cast<unsigned long long>(s.deadline_miss),
      static_cast<unsigned long long>(s.shed_queue),
      static_cast<unsigned long long>(s.shed_deadline),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.p50_latency_ticks),
      static_cast<unsigned long long>(s.p99_latency_ticks));
}

int run(int argc, char** argv) {
  reject_unknown_flags(argc, argv);
  DriverSession session(argc, argv);

  serve::LoadConfig config;
  config.requests = static_cast<int>(
      flag_u64(argc, argv, "--requests", 200, 1, 1'000'000));
  config.seed = flag_u64(argc, argv, "--seed", 2021, 0,
                         ~std::uint64_t{0} - 1);
  config.threads = session.threads();
  config.mean_gap_ticks =
      flag_u64(argc, argv, "--gap", 30'000, 1, 1'000'000'000);
  if (const char* list = flag_str(argc, argv, "--tenants")) {
    config.tenants = parse_tenants(list);
  }
  config.chaos = flag_present(argc, argv, "--chaos");
  config.storms_per_kind =
      static_cast<int>(flag_u64(argc, argv, "--storms", 2, 1, 64));
  config.verify = flag_present(argc, argv, "--verify");
  config.retry.max_retries =
      static_cast<int>(flag_u64(argc, argv, "--retries", 2, 0, 16));
  config.retry.seed = config.seed;
  config.devices = static_cast<int>(flag_u64(argc, argv, "--devices", 1, 1, 32));
  config.device_chaos = flag_present(argc, argv, "--device-chaos");
  config.device_storms_per_kind =
      static_cast<int>(flag_u64(argc, argv, "--device-storms", 1, 1, 64));
  config.hedge = !flag_present(argc, argv, "--no-hedge");
  config.hedge_margin_percent =
      static_cast<int>(flag_u64(argc, argv, "--hedge-margin", 25, 0, 100));
  config.drains = parse_drains(argc, argv, config.devices);

  std::printf("# Serve load: %d requests, seed %llu, mean gap %llu, "
              "chaos %s, verify %s, retries %d\n",
              config.requests, static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.mean_gap_ticks),
              config.chaos ? "on" : "off", config.verify ? "on" : "off",
              config.retry.max_retries);
  if (config.devices > 1 || config.device_chaos || !config.drains.empty()) {
    std::printf("# fleet-config: {\"devices\":%d,\"device_chaos\":%s,"
                "\"device_storms\":%d,\"hedge\":%s,\"hedge_margin\":%d,"
                "\"drains\":%zu}\n",
                config.devices, config.device_chaos ? "true" : "false",
                config.device_storms_per_kind,
                config.hedge ? "true" : "false", config.hedge_margin_percent,
                config.drains.size());
  }

  serve::LoadResult result;
  run_case("serve_load", [&] { result = serve::run_load(config); });

  print_tenant("load-summary", result.total);
  for (const serve::TenantStats& t : result.tenants) {
    print_tenant("tenant", t);
  }
  std::printf(
      "# load-health: {\"goodput_per_mtick\":%.3f,\"final_tick\":%llu,"
      "\"quarantines\":%llu,\"half_opens\":%llu,\"restores\":%llu,"
      "\"reopens\":%llu,\"policy_cache_rejections\":%llu,"
      "\"mismatches\":%llu,\"counter_mismatches\":%llu}\n",
      result.goodput_per_mtick,
      static_cast<unsigned long long>(result.final_tick),
      static_cast<unsigned long long>(result.health.quarantines),
      static_cast<unsigned long long>(result.health.half_opens),
      static_cast<unsigned long long>(result.health.restores),
      static_cast<unsigned long long>(result.health.reopens),
      static_cast<unsigned long long>(result.policy_cache_rejections),
      static_cast<unsigned long long>(result.mismatches),
      static_cast<unsigned long long>(result.counter_mismatches));
  if (config.devices > 1 || config.device_chaos || !config.drains.empty()) {
    std::printf(
        "# fleet: {\"placements\":%llu,\"failovers\":%llu,\"migrated\":%llu,"
        "\"hedges\":%llu,\"hedge_wins_secondary\":%llu,"
        "\"hedge_cancelled\":%llu,\"probes\":%llu,\"drains\":%llu,"
        "\"drain_reopens\":%llu,\"restores\":%llu,\"devices_lost\":%llu,"
        "\"repro_bundles\":%llu,\"repro_dropped\":%llu}\n",
        static_cast<unsigned long long>(result.fleet.placements),
        static_cast<unsigned long long>(result.fleet.failovers),
        static_cast<unsigned long long>(result.fleet.migrated),
        static_cast<unsigned long long>(result.fleet.hedges),
        static_cast<unsigned long long>(result.fleet.hedge_wins_secondary),
        static_cast<unsigned long long>(result.fleet.hedge_cancelled),
        static_cast<unsigned long long>(result.fleet.probes),
        static_cast<unsigned long long>(result.fleet.drains),
        static_cast<unsigned long long>(result.fleet.drain_reopens),
        static_cast<unsigned long long>(result.fleet.restores),
        static_cast<unsigned long long>(result.fleet.devices_lost),
        static_cast<unsigned long long>(result.repro_bundles),
        static_cast<unsigned long long>(result.repro_dropped));
  }
  if (result.mismatches > 0 || result.counter_mismatches > 0) {
    std::printf("# load-health: FAIL — scheduled fault-free requests were "
                "not identical to direct dispatch\n");
  }

  if (const char* path = flag_str(argc, argv, "--report")) {
    std::ofstream out(path);
    out << result.to_json(config) << "\n";
    std::printf("# load-report: %s %s\n", path,
                out.good() ? "written" : "WRITE FAILED");
  }
  if (const char* path = flag_str(argc, argv, "--serve-report")) {
    std::ofstream out(path);
    out << result.report_json << "\n";
    std::printf("# serve-report: %s %s\n", path,
                out.good() ? "written" : "WRITE FAILED");
  }
  if (const char* path = flag_str(argc, argv, "--repro")) {
    std::ofstream out(path);
    out << result.repro_json << "\n";
    std::printf("# repro: %s %s\n", path,
                out.good() ? "written" : "WRITE FAILED");
  }
  const bool failed = result.mismatches > 0 || result.counter_mismatches > 0;
  return session.finish() | (failed ? 1 : 0);
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

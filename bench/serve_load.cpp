// The multi-tenant serving load driver — replays a seeded open-loop
// request trace (SpMM / SDDMM / sparse attention from three tenants)
// through the scheduler (serve/scheduler.hpp): EDF scheduling under
// deadline SLOs, per-tenant quotas and backlog bounds, kernel circuit
// breakers, and optional chaos storms composed from the fault layer.
//
//   --requests=N        trace length (default 200)
//   --seed=S            trace + storm seed (default 2021)
//   --gap=TICKS         mean inter-arrival gap (default 30000)
//   --chaos             compose seeded chaos storms over the trace
//   --storms=N          storms per chaos kind (default 2)
//   --verify            fault-free cross-check: every completed request
//                       is compared bit-for-bit (and SM-local-counter-
//                       for-counter) against direct unsupervised
//                       dispatch on a reference device
//   --retries=K         max retries per ladder rung (default 2)
//   --report=FILE       write the vsparse-load-v1 JSON report
//   --serve-report=FILE write the per-request vsparse-serve-v1 artifact
//   --threads=N         engine threads (determinism demo: the report
//                       and every summary line must not change)
//
// Everything except the `# throughput:` line is deterministic: same
// seed and config give byte-identical output at any --threads=N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "vsparse/bench/runner.hpp"
#include "vsparse/serve/scheduler.hpp"

namespace vsparse::bench {
namespace {

std::uint64_t flag_u64(int argc, char** argv, const char* name,
                       std::uint64_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::strtoull(argv[i] + len + 1, nullptr, 10);
    }
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

const char* flag_str(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

void print_tenant(const char* tag, const serve::TenantStats& s) {
  std::printf(
      "# %s: {\"name\":\"%s\",\"submitted\":%llu,\"completed\":%llu,"
      "\"slo_met\":%llu,\"deadline_miss\":%llu,\"shed_queue\":%llu,"
      "\"shed_deadline\":%llu,\"rejected\":%llu,\"failed\":%llu,"
      "\"p50_latency_ticks\":%llu,\"p99_latency_ticks\":%llu}\n",
      tag, s.name.c_str(), static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.slo_met),
      static_cast<unsigned long long>(s.deadline_miss),
      static_cast<unsigned long long>(s.shed_queue),
      static_cast<unsigned long long>(s.shed_deadline),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.p50_latency_ticks),
      static_cast<unsigned long long>(s.p99_latency_ticks));
}

int run(int argc, char** argv) {
  DriverSession session(argc, argv);

  serve::LoadConfig config;
  config.requests = static_cast<int>(flag_u64(argc, argv, "--requests", 200));
  config.seed = flag_u64(argc, argv, "--seed", 2021);
  config.threads = session.threads();
  config.mean_gap_ticks = flag_u64(argc, argv, "--gap", 30'000);
  config.chaos = flag_present(argc, argv, "--chaos");
  config.storms_per_kind =
      static_cast<int>(flag_u64(argc, argv, "--storms", 2));
  config.verify = flag_present(argc, argv, "--verify");
  config.retry.max_retries =
      static_cast<int>(flag_u64(argc, argv, "--retries", 2));
  config.retry.seed = config.seed;

  std::printf("# Serve load: %d requests, seed %llu, mean gap %llu, "
              "chaos %s, verify %s, retries %d\n",
              config.requests, static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.mean_gap_ticks),
              config.chaos ? "on" : "off", config.verify ? "on" : "off",
              config.retry.max_retries);

  serve::LoadResult result;
  run_case("serve_load", [&] { result = serve::run_load(config); });

  print_tenant("load-summary", result.total);
  for (const serve::TenantStats& t : result.tenants) {
    print_tenant("tenant", t);
  }
  std::printf(
      "# load-health: {\"goodput_per_mtick\":%.3f,\"final_tick\":%llu,"
      "\"quarantines\":%llu,\"half_opens\":%llu,\"restores\":%llu,"
      "\"reopens\":%llu,\"policy_cache_rejections\":%llu,"
      "\"mismatches\":%llu,\"counter_mismatches\":%llu}\n",
      result.goodput_per_mtick,
      static_cast<unsigned long long>(result.final_tick),
      static_cast<unsigned long long>(result.health.quarantines),
      static_cast<unsigned long long>(result.health.half_opens),
      static_cast<unsigned long long>(result.health.restores),
      static_cast<unsigned long long>(result.health.reopens),
      static_cast<unsigned long long>(result.policy_cache_rejections),
      static_cast<unsigned long long>(result.mismatches),
      static_cast<unsigned long long>(result.counter_mismatches));
  if (result.mismatches > 0 || result.counter_mismatches > 0) {
    std::printf("# load-health: FAIL — scheduled fault-free requests were "
                "not identical to direct dispatch\n");
  }

  if (const char* path = flag_str(argc, argv, "--report")) {
    std::ofstream out(path);
    out << result.to_json(config) << "\n";
    std::printf("# load-report: %s %s\n", path,
                out.good() ? "written" : "WRITE FAILED");
  }
  if (const char* path = flag_str(argc, argv, "--serve-report")) {
    std::ofstream out(path);
    out << result.report_json << "\n";
    std::printf("# serve-report: %s %s\n", path,
                out.good() ? "written" : "WRITE FAILED");
  }
  const bool failed = result.mismatches > 0 || result.counter_mismatches > 0;
  return session.finish() | (failed ? 1 : 0);
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

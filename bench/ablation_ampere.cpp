// Extension beyond the paper: what the model predicts for the octet
// SpMM across architecture presets — by default the paper's Volta V100
// against an Ampere A100 (override with --arch=A,B,...).  The
// interesting question is whether the practical-speedup crossover
// moves: A100's 40 MB L2 and higher bandwidth favor the sparse
// kernel's low-reuse traffic, while its doubled TCU rate favors the
// dense baseline.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::bench {
namespace {

/// Human labels per preset: a long form for the banner line and a
/// short form for the table column.  Unlisted presets fall back to
/// their preset name for both.
struct ArchLabel {
  const char* arch;
  const char* full;
  const char* column;
};

constexpr ArchLabel kArchLabels[] = {
    {"volta-v100", "Volta V100", "V100"},
    {"turing-t4", "Turing T4", "T4"},
    {"ampere-a100", "Ampere A100", "A100"},
    {"volta-hmma-switch", "Volta V100 (HMMA-SWITCH)", "V100+SW"},
};

ArchLabel label_of(const char* arch) {
  for (const ArchLabel& label : kArchLabels) {
    if (std::strcmp(label.arch, arch) == 0) return label;
  }
  return ArchLabel{arch, arch, arch};
}

double octet_speedup(const gpusim::DeviceConfig& hw, Shape shape, int n,
                     int v, double sparsity,
                     const gpusim::SimOptions& sim) {
  gpusim::DeviceConfig dc = hw;
  dc.dram_capacity = std::size_t{1} << 30;
  gpusim::Device dev(dc);
  dev.set_sim_options(sim);
  Cvs a_host = make_suite_cvs(shape, sparsity, v);
  auto a = to_device(dev, a_host);
  auto b = dev.alloc<half_t>(static_cast<std::size_t>(shape.k) * n);
  auto c = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * n);
  DenseDevice<half_t> db{b, shape.k, n, n, Layout::kRowMajor};
  DenseDevice<half_t> dc2{c, shape.m, n, n, Layout::kRowMajor};
  const double sparse = kernels::spmm_octet(dev, a, db, dc2).cycles(hw);
  auto ad = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * shape.k);
  DenseDevice<half_t> dad{ad, shape.m, shape.k, shape.k, Layout::kRowMajor};
  const double dense = kernels::hgemm_tcu(dev, dad, db, dc2).cycles(hw);
  return dense / sparse;
}

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const std::vector<gpusim::DeviceConfig> arches =
      parse_arch_list(argc, argv, "volta-v100,ampere-a100");
  const Shape shape = scale == Scale::kPaper ? Shape{2048, 1024}
                                             : Shape{1024, 512};
  const int n = 256, v = 4;

  std::string versus;
  for (const gpusim::DeviceConfig& hw : arches) {
    if (!versus.empty()) versus += " vs ";
    versus += label_of(hw.arch).full;
  }
  std::printf("# Extension: octet SpMM (V=%d) speedup over dense hgemm, "
              "%s, %dx%dx%d\n",
              v, versus.c_str(), shape.m, shape.k, n);
  std::printf("%-8s", "sparsity");
  for (const gpusim::DeviceConfig& hw : arches) {
    std::printf(" %-12s", label_of(hw.arch).column);
  }
  std::printf("\n");
  for (double sparsity : sparsity_grid()) {
    char case_name[64];
    std::snprintf(case_name, sizeof(case_name),
                  "ablation_ampere sparsity=%.2f", sparsity);
    run_case(case_name, [&] {
      std::printf("%-8.2f", sparsity);
      for (const gpusim::DeviceConfig& hw : arches) {
        std::printf(" %10.2fx", octet_speedup(hw, shape, n, v, sparsity, sim));
      }
      std::printf("\n");
    });
  }
  std::printf("\n# prediction: the bigger L2 + bandwidth help the sparse "
              "kernel's low-reuse traffic, but the doubled TCU rate helps "
              "dense more — watch where the crossover moves\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// Extension beyond the paper: what the model predicts for the octet
// SpMM on an Ampere A100 vs the paper's Volta V100.  The interesting
// question is whether the practical-speedup crossover moves: A100's
// 40 MB L2 and higher bandwidth favor the sparse kernel's low-reuse
// traffic, while its doubled TCU rate favors the dense baseline.
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::bench {
namespace {

double octet_speedup(const gpusim::DeviceConfig& hw, Shape shape, int n,
                     int v, double sparsity,
                     const gpusim::SimOptions& sim) {
  gpusim::DeviceConfig dc = hw;
  dc.dram_capacity = std::size_t{1} << 30;
  gpusim::Device dev(dc);
  dev.set_sim_options(sim);
  Cvs a_host = make_suite_cvs(shape, sparsity, v);
  auto a = to_device(dev, a_host);
  auto b = dev.alloc<half_t>(static_cast<std::size_t>(shape.k) * n);
  auto c = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * n);
  DenseDevice<half_t> db{b, shape.k, n, n, Layout::kRowMajor};
  DenseDevice<half_t> dc2{c, shape.m, n, n, Layout::kRowMajor};
  const double sparse = kernels::spmm_octet(dev, a, db, dc2).cycles(hw);
  auto ad = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * shape.k);
  DenseDevice<half_t> dad{ad, shape.m, shape.k, shape.k, Layout::kRowMajor};
  const double dense = kernels::hgemm_tcu(dev, dad, db, dc2).cycles(hw);
  return dense / sparse;
}

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const Shape shape = scale == Scale::kPaper ? Shape{2048, 1024}
                                             : Shape{1024, 512};
  const int n = 256, v = 4;
  const auto volta = gpusim::DeviceConfig::volta_v100();
  const auto ampere = gpusim::DeviceConfig::ampere_a100();

  std::printf("# Extension: octet SpMM (V=%d) speedup over dense hgemm, "
              "Volta V100 vs Ampere A100, %dx%dx%d\n",
              v, shape.m, shape.k, n);
  std::printf("%-8s %-12s %-12s\n", "sparsity", "V100", "A100");
  for (double sparsity : sparsity_grid()) {
    char case_name[64];
    std::snprintf(case_name, sizeof(case_name),
                  "ablation_ampere sparsity=%.2f", sparsity);
    run_case(case_name, [&] {
      std::printf("%-8.2f %10.2fx %10.2fx\n", sparsity,
                  octet_speedup(volta, shape, n, v, sparsity, sim),
                  octet_speedup(ampere, shape, n, v, sparsity, sim));
    });
  }
  std::printf("\n# prediction: the bigger L2 + bandwidth help the sparse "
              "kernel's low-reuse traffic, but the doubled TCU rate helps "
              "dense more — watch where the crossover moves\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// Ablation: the paper's future-work optimization (§7.1.3) — removing
// HMMA STEP 2&3 from the SASS when V <= 4, which the octet tiling's
// operand switch makes possible but no public assembler supported.
// The simulator CAN execute it; this bench quantifies what the paper
// left on the table.
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int k = scale == Scale::kPaper ? 1024 : 512;
  const int n = 256;
  DenseBaseline base(session.hw(), {}, sim);
  const auto& hw = base.hw();

  std::printf("# Ablation: §7.1.3 HMMA STEP 2&3 removal for V <= 4, "
              "spmm_octet on %dx%dx%d\n",
              m, k, n);
  std::printf("%-4s %-8s %-14s %-14s %-10s %s\n", "V", "sparsity",
              "as evaluated", "steps removed", "speedup", "HMMA saved");
  for (int v : {2, 4}) {
    for (double sparsity : {0.7, 0.9, 0.98}) {
      char case_name[64];
      std::snprintf(case_name, sizeof(case_name),
                    "ablation_stepskip v=%d sparsity=%.2f", v, sparsity);
      run_case(case_name, [&] {
      gpusim::Device dev = session.device();
      Cvs a_host = make_suite_cvs({m, k}, sparsity, v);
      auto a = to_device(dev, a_host);
      auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
      auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
      DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
      DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
      auto paper = kernels::spmm_octet(dev, a, db, dc);
      dev.flush_all_caches();
      auto skip = kernels::spmm_octet(dev, a, db, dc,
                                      {.skip_steps_for_small_v = true});
      const double pc = paper.cycles(hw), sc = skip.cycles(hw);
      std::printf("%-4d %-8.2f %12.0f c %12.0f c %9.2fx %9.0f%%\n", v,
                  sparsity, pc, sc, pc / sc,
                  100.0 * (1.0 - static_cast<double>(
                                     skip.stats.op(gpusim::Op::kHmma)) /
                                     static_cast<double>(
                                         paper.stats.op(gpusim::Op::kHmma))));
      });
    }
  }
  std::printf("\n# the win is modest because the evaluated kernel is "
              "memory-bound at these sizes — consistent with the paper "
              "deferring it\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

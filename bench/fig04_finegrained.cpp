// Figure 4: speedup over cuBLAS of the fine-grained sparse baselines —
// Sputnik (= FPU 1-D subwarp tiling at V=1) and cuSPARSE (row-per-warp
// CSR) — for SpMM and SDDMM under single and half precision.
//
// The paper's observation this figure carries: both libraries achieve
// real speedup under single precision at >= 80% sparsity, but under
// half precision the dense baseline (cublasHgemm) pulls far ahead and
// fine-grained sparsity only pays at extreme sparsity.
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/bench/summary.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/sddmm/sddmm_csr_fine.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_csr_fine.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const auto shapes = suite_shapes(scale);
  const int n = 256;  // dense output width (SpMM) / inner dim (SDDMM)
  DenseBaseline dense(session.hw(), {}, sim);
  const auto& hw = dense.hw();
  const auto& params = dense.params();

  std::printf("# Figure 4: fine-grained sparse baselines vs cuBLAS\n");
  std::printf("%-6s %-10s %-8s %-10s %s\n", "op", "precision", "sparsity",
              "kernel", "geomean  [min q1 med q3 max]");

  for (double sparsity : sparsity_grid()) {
    std::vector<double> spmm_sput_s, spmm_cusp_s, spmm_sput_h, spmm_cusp_h;
    std::vector<double> sddmm_sput_s, sddmm_cusp_s, sddmm_sput_h;
    for (const Shape& shape : shapes) {
      Cvs a_host = make_suite_cvs(shape, sparsity, 1);
      const double dh = dense.hgemm_cycles(shape.m, shape.k, n);
      const double ds = dense.sgemm_cycles(shape.m, shape.k, n);

      char case_name[96];
      std::snprintf(case_name, sizeof(case_name),
                    "fig04 spmm sparsity=%.2f shape=%dx%d", sparsity, shape.m,
                    shape.k);
      // ---- SpMM --------------------------------------------------------
      run_case(case_name, [&] {
        gpusim::Device dev = session.device();
        auto a = to_device(dev, a_host);
        auto af = to_device_f32(dev, a_host);
        auto bh = dev.alloc<half_t>(static_cast<std::size_t>(shape.k) * n);
        auto ch = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * n);
        auto bf = dev.alloc<float>(static_cast<std::size_t>(shape.k) * n);
        auto cf = dev.alloc<float>(static_cast<std::size_t>(shape.m) * n);
        DenseDevice<half_t> dbh{bh, shape.k, n, n, Layout::kRowMajor};
        DenseDevice<half_t> dch{ch, shape.m, n, n, Layout::kRowMajor};
        DenseDevice<float> dbf{bf, shape.k, n, n, Layout::kRowMajor};
        DenseDevice<float> dcf{cf, shape.m, n, n, Layout::kRowMajor};

        spmm_sput_h.push_back(
            dh / kernels::spmm_fpu_subwarp(dev, a, dbh, dch).cycles(hw, params));
        spmm_cusp_h.push_back(
            dh / kernels::spmm_csr_fine(dev, a, dbh, dch).cycles(hw, params));
        spmm_sput_s.push_back(
            ds /
            kernels::spmm_fpu_subwarp_f32(dev, af, dbf, dcf).cycles(hw, params));
        spmm_cusp_s.push_back(
            ds /
            kernels::spmm_csr_fine_f32(dev, af, dbf, dcf).cycles(hw, params));
      });

      std::snprintf(case_name, sizeof(case_name),
                    "fig04 sddmm sparsity=%.2f shape=%dx%d", sparsity, shape.m,
                    shape.k);
      // ---- SDDMM -------------------------------------------------------
      run_case(case_name, [&] {
        // C[m x k] sparse = A[m x n] * B[n x k]; dense equivalent is the
        // full (m x n x k) GEMM.
        gpusim::Device dev = session.device();
        Rng rng(bench_seed(shape, sparsity, 1) + 7);
        Cvs mask_host = make_cvs_mask(shape.m, shape.k, 1, sparsity, rng, 0.25);
        auto mask = to_device(dev, mask_host);
        auto maskf = to_device_f32(dev, mask_host);
        auto ah = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * n);
        auto bh = dev.alloc<half_t>(static_cast<std::size_t>(n) * shape.k);
        auto af = dev.alloc<float>(static_cast<std::size_t>(shape.m) * n);
        auto bf = dev.alloc<float>(static_cast<std::size_t>(n) * shape.k);
        auto outh = dev.alloc<half_t>(mask_host.col_idx.size());
        auto outf = dev.alloc<float>(mask_host.col_idx.size());
        DenseDevice<half_t> dah{ah, shape.m, n, n, Layout::kRowMajor};
        DenseDevice<half_t> dbh{bh, n, shape.k, n, Layout::kColMajor};
        DenseDevice<float> daf{af, shape.m, n, n, Layout::kRowMajor};
        DenseDevice<float> dbf{bf, n, shape.k, n, Layout::kColMajor};
        const double dh2 = dense.hgemm_cycles(shape.m, n, shape.k);
        const double ds2 = dense.sgemm_cycles(shape.m, n, shape.k);

        sddmm_sput_h.push_back(
            dh2 / kernels::sddmm_fpu_subwarp(dev, dah, dbh, mask, outh)
                      .cycles(hw, params));
        sddmm_sput_s.push_back(
            ds2 / kernels::sddmm_fpu_subwarp_f32(dev, daf, dbf, maskf, outf)
                      .cycles(hw, params));
        sddmm_cusp_s.push_back(
            ds2 / kernels::sddmm_csr_fine_f32(dev, daf, dbf, maskf, outf)
                      .cycles(hw, params));
      });
    }
    const auto row = [&](const char* op, const char* prec, const char* kern,
                         const std::vector<double>& s) {
      std::printf("%-6s %-10s %-8.2f %-10s %s\n", op, prec, sparsity, kern,
                  to_string(summarize(s)).c_str());
    };
    row("spmm", "single", "sputnik", spmm_sput_s);
    row("spmm", "single", "cusparse", spmm_cusp_s);
    row("spmm", "half", "sputnik", spmm_sput_h);
    row("spmm", "half", "cusparse", spmm_cusp_h);
    row("sddmm", "single", "sputnik", sddmm_sput_s);
    row("sddmm", "single", "cusparse", sddmm_cusp_s);
    row("sddmm", "half", "sputnik", sddmm_sput_h);
  }
  std::printf("\n# paper shape: single-precision kernels beat cublasSgemm "
              "from ~80%% sparsity; half-precision ones only at extreme "
              "sparsity (the paper's motivation)\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// google-benchmark micro suite for the substrate primitives: fp16
// conversion, cache-model lookups, the octet MMA, warp loads, and the
// benchmark generators.  These measure the SIMULATOR's own speed
// (host wall-clock), complementing the model-cycle figure benches.
#include <benchmark/benchmark.h>

#include "vsparse/common/rng.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/gpusim/cache.hpp"
#include "vsparse/gpusim/device.hpp"
#include "vsparse/gpusim/engine/launch.hpp"
#include "vsparse/gpusim/tensorcore.hpp"

namespace vsparse {
namespace {

void BM_HalfFromFloat(benchmark::State& state) {
  Rng rng(1);
  std::vector<float> xs(4096);
  for (float& x : xs) x = rng.uniform_float(-100, 100);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (float x : xs) acc += half_t(x).bits();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HalfFromFloat);

void BM_HalfToFloat(benchmark::State& state) {
  std::vector<half_t> xs(4096);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = half_t::from_bits(static_cast<std::uint16_t>(i * 13));
  }
  for (auto _ : state) {
    float acc = 0;
    for (half_t x : xs) acc += static_cast<float>(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HalfToFloat);

void BM_SectorCacheAccess(benchmark::State& state) {
  gpusim::SectorCache cache(128 << 10, 128, 32, 4);
  Rng rng(2);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.uniform_u64(1 << 20) * 32;
  for (auto _ : state) {
    int hits = 0;
    for (auto a : addrs) hits += cache.access(a) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SectorCacheAccess);

void BM_MmaM8n8k4(benchmark::State& state) {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 1 << 20;
  gpusim::Device dev(cfg);
  gpusim::MmaFragAB a{}, b{};
  gpusim::MmaFragC c{};
  Rng rng(3);
  for (auto& lane : a) {
    for (int i = 0; i < 4; ++i) lane[i] = half_t(rng.uniform_float(-1, 1));
  }
  for (auto& lane : b) {
    for (int i = 0; i < 4; ++i) lane[i] = half_t(rng.uniform_float(-1, 1));
  }
  gpusim::LaunchConfig lcfg;
  for (auto _ : state) {
    gpusim::launch(dev, lcfg, [&](gpusim::Cta& cta) {
      gpusim::Warp w = cta.warp(0);
      for (int i = 0; i < 64; ++i) gpusim::mma_m8n8k4(w, a, b, c);
    });
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 1024);  // MACs
}
BENCHMARK(BM_MmaM8n8k4);

void BM_WarpLdg128(benchmark::State& state) {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 16 << 20;
  gpusim::Device dev(cfg);
  auto buf = dev.alloc<half8>(64 << 10);
  gpusim::LaunchConfig lcfg;
  Rng rng(4);
  for (auto _ : state) {
    gpusim::launch(dev, lcfg, [&](gpusim::Cta& cta) {
      gpusim::Warp w = cta.warp(0);
      gpusim::AddrLanes addr;
      gpusim::Lanes<half8> dst;
      for (int rep = 0; rep < 64; ++rep) {
        const auto base = rng.uniform_u64(buf.size() - 32);
        for (int lane = 0; lane < 32; ++lane) {
          addr[static_cast<std::size_t>(lane)] =
              buf.addr(base + static_cast<std::size_t>(lane));
        }
        w.ldg(addr, dst);
      }
      benchmark::DoNotOptimize(dst);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WarpLdg128);

// Per-span-op rows (DESIGN.md §2h): same logical accesses as the
// per-lane BM_WarpLdg128 above but stated as span descriptors, so the
// trajectory artifact shows what the fast path buys per op shape.

void BM_SpanLdgUniform(benchmark::State& state) {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 16 << 20;
  gpusim::Device dev(cfg);
  auto buf = dev.alloc<half8>(64 << 10);
  gpusim::LaunchConfig lcfg;
  Rng rng(7);
  for (auto _ : state) {
    gpusim::launch(dev, lcfg, [&](gpusim::Cta& cta) {
      gpusim::Warp w = cta.warp(0);
      gpusim::Lanes<half8> dst;
      for (int rep = 0; rep < 64; ++rep) {
        w.ldg_span(buf.addr(rng.uniform_u64(buf.size())), 0, dst);
      }
      benchmark::DoNotOptimize(dst);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpanLdgUniform);

void BM_SpanLdgAffine128(benchmark::State& state) {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 16 << 20;
  gpusim::Device dev(cfg);
  auto buf = dev.alloc<half8>(64 << 10);
  gpusim::LaunchConfig lcfg;
  Rng rng(8);
  for (auto _ : state) {
    gpusim::launch(dev, lcfg, [&](gpusim::Cta& cta) {
      gpusim::Warp w = cta.warp(0);
      gpusim::Lanes<half8> dst;
      for (int rep = 0; rep < 64; ++rep) {
        w.ldg_span(buf.addr(rng.uniform_u64(buf.size() - 32)), 16, dst);
      }
      benchmark::DoNotOptimize(dst);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpanLdgAffine128);

void BM_SpanLdgSegmented4x8(benchmark::State& state) {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 16 << 20;
  gpusim::Device dev(cfg);
  auto buf = dev.alloc<half8>(64 << 10);
  gpusim::LaunchConfig lcfg;
  Rng rng(9);
  for (auto _ : state) {
    gpusim::launch(dev, lcfg, [&](gpusim::Cta& cta) {
      gpusim::Warp w = cta.warp(0);
      gpusim::Lanes<half8> dst;
      std::uint64_t gbase[4];
      for (int rep = 0; rep < 64; ++rep) {
        for (auto& g : gbase) g = buf.addr(rng.uniform_u64(buf.size() - 8));
        w.ldg_span(gbase, 4, 8, 16, dst);
      }
      benchmark::DoNotOptimize(dst);
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpanLdgSegmented4x8);

void BM_SpanStgAffine128(benchmark::State& state) {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 16 << 20;
  gpusim::Device dev(cfg);
  auto buf = dev.alloc<half8>(64 << 10);
  gpusim::LaunchConfig lcfg;
  Rng rng(10);
  for (auto _ : state) {
    gpusim::launch(dev, lcfg, [&](gpusim::Cta& cta) {
      gpusim::Warp w = cta.warp(0);
      gpusim::Lanes<half8> src{};
      for (int rep = 0; rep < 64; ++rep) {
        w.stg_span(buf.addr(rng.uniform_u64(buf.size() - 32)), 16, src);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpanStgAffine128);

void BM_SpanSmemRoundTrip(benchmark::State& state) {
  gpusim::DeviceConfig cfg;
  cfg.dram_capacity = 1 << 20;
  gpusim::Device dev(cfg);
  gpusim::LaunchConfig lcfg;
  lcfg.smem_bytes = 1024;
  for (auto _ : state) {
    gpusim::launch(dev, lcfg, [&](gpusim::Cta& cta) {
      gpusim::Warp w = cta.warp(0);
      gpusim::Lanes<half8> v{};
      for (int rep = 0; rep < 64; ++rep) {
        w.sts_span(0, 16, v);
        w.lds_span(0, 16, v);
      }
      benchmark::DoNotOptimize(v);
    });
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SpanSmemRoundTrip);

void BM_MakeCvs(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    Cvs m = make_cvs(1024, 512, 4, 0.9, rng);
    benchmark::DoNotOptimize(m.nnz());
  }
}
BENCHMARK(BM_MakeCvs);

void BM_AttentionMask(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    Cvs m = make_attention_mask(2048, 8, 256, 0.9, rng);
    benchmark::DoNotOptimize(m.nnz());
  }
}
BENCHMARK(BM_AttentionMask);

}  // namespace
}  // namespace vsparse

// Figure 17: SpMM speedup over cublasHgemm for the FPU baseline
// ("fpu"), the cuSPARSE Blocked-ELL kernel ("blocked-ELL") and the
// TCU-based 1-D Octet Tiling ("mma"), across V in {1,2,4,8},
// N in {64,128,256} and the sparsity grid.  For V = 1 the octet and
// Blocked-ELL kernels do not apply (the paper's V=1 panels show the
// fine-grained baselines only).
//
// Prints one row per (V, N, sparsity, kernel) with the geometric-mean
// speedup and box statistics over the DLMC-like suite, then the
// paper's §7.2.1 headline aggregates.
#include <cstdio>
#include <map>
#include <vector>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/bench/summary.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_csr_fine.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const auto shapes = suite_shapes(scale);
  DenseBaseline dense(session.hw(), {}, sim);
  const auto& hw = dense.hw();
  const auto& params = dense.params();

  std::printf("# Figure 17: SpMM speedup over cublasHgemm\n");
  std::printf("%-4s %-4s %-8s %-12s %s\n", "V", "N", "sparsity", "kernel",
              "geomean  [min q1 med q3 max]");

  // (V, kernel) -> sparsity -> samples, for the §7.2.1 headlines.
  std::map<std::pair<int, std::string>, std::map<double, std::vector<double>>>
      all;

  for (int v : {1, 2, 4, 8}) {
    for (int n : {64, 128, 256}) {
      for (double sparsity : sparsity_grid()) {
        std::map<std::string, std::vector<double>> cell;
        for (const Shape& shape : shapes) {
          char case_name[96];
          std::snprintf(case_name, sizeof(case_name),
                        "fig17 v=%d n=%d sparsity=%.2f shape=%dx%d", v, n,
                        sparsity, shape.m, shape.k);
          run_case(case_name, [&] {
            const double dense_cycles =
                dense.hgemm_cycles(shape.m, shape.k, n);
            Cvs a_host = make_suite_cvs(shape, sparsity, v);

            gpusim::Device dev = session.device();
            auto a = to_device(dev, a_host);
            auto b = dev.alloc<half_t>(static_cast<std::size_t>(shape.k) * n);
            auto c = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * n);
            DenseDevice<half_t> db{b, shape.k, n, n, Layout::kRowMajor};
            DenseDevice<half_t> dc{c, shape.m, n, n, Layout::kRowMajor};

            // fpu baseline (V=1 == Sputnik fine-grained).
            cell["fpu"].push_back(
                dense_cycles /
                kernels::spmm_fpu_subwarp(dev, a, db, dc).cycles(hw, params));

            if (v > 1) {
              BlockedEll ell_host =
                  make_suite_blocked_ell(shape, sparsity, v);
              auto ell = to_device(dev, ell_host);
              cell["blocked-ELL"].push_back(
                  dense_cycles /
                  kernels::spmm_blocked_ell(dev, ell, db, dc)
                      .cycles(hw, params));
              cell["mma"].push_back(
                  dense_cycles /
                  kernels::spmm_octet(dev, a, db, dc).cycles(hw, params));
            }
          });
        }
        for (const auto& [name, samples] : cell) {
          const BoxStats stats = summarize(samples);
          std::printf("%-4d %-4d %-8.2f %-12s %s\n", v, n, sparsity,
                      name.c_str(), to_string(stats).c_str());
          all[{v, name}][sparsity].insert(all[{v, name}][sparsity].end(),
                                          samples.begin(), samples.end());
        }
      }
    }
  }

  // ---- §7.2.1 headlines ------------------------------------------------
  std::printf("\n# headline: geomean speedup of mma over baselines "
              "(paper: 1.34-4.51x over fpu, 1.71-7.19x over blocked-ELL)\n");
  for (const char* base : {"fpu", "blocked-ELL"}) {
    double lo = 1e30, hi = 0;
    for (int v : {2, 4, 8}) {
      for (double sparsity : sparsity_grid()) {
        const auto& mma = all[{v, "mma"}][sparsity];
        const auto& ref = all[{v, base}][sparsity];
        if (mma.empty() || ref.empty()) continue;
        const double ratio = geomean(mma) / geomean(ref);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
      }
    }
    std::printf("mma vs %-12s: %.2f-%.2fx\n", base, lo, hi);
  }

  std::printf("\n# headline: lowest sparsity with geomean speedup > 1 over "
              "cublasHgemm (paper: >80%% at V=2, >70%% at V=4, >50%% at "
              "V=8)\n");
  for (int v : {2, 4, 8}) {
    double threshold = 1.0;
    bool found = false;
    for (double sparsity : sparsity_grid()) {
      if (geomean(all[{v, "mma"}][sparsity]) > 1.0) {
        threshold = sparsity;
        found = true;
        break;
      }
    }
    std::printf("V=%d: %s\n", v,
                found ? (std::to_string(threshold).substr(0, 4) +
                         " sparsity crosses 1.0")
                            .c_str()
                      : "never crosses 1.0");
  }
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

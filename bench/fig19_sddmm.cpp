// Figure 19: SDDMM speedup over cublasHgemm for the FPU baseline
// ("fpu"), the classic warp-tiling TCU baseline ("wmma") and the
// octet tiling with its three inverted-pattern strategies
// ("mma (reg)" / "mma (shfl)" / "mma (arch)"), across V in {1,2,4,8}
// and K in {64,128,256}.  V = 1 panels show the FPU baseline only
// (the TCU mappings need V >= 2).
#include <cstdio>
#include <map>
#include <vector>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/bench/summary.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/sddmm/sddmm_wmma.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const auto shapes = suite_shapes(scale);
  DenseBaseline dense(session.hw(), {}, sim);
  const auto& hw = dense.hw();
  const auto& params = dense.params();

  std::printf("# Figure 19: SDDMM speedup over cublasHgemm\n");
  std::printf("%-4s %-4s %-8s %-12s %s\n", "V", "K", "sparsity", "kernel",
              "geomean  [min q1 med q3 max]");

  std::map<std::pair<int, std::string>, std::map<double, std::vector<double>>>
      all;

  for (int v : {1, 2, 4, 8}) {
    for (int kdim : {64, 128, 256}) {
      for (double sparsity : sparsity_grid()) {
        std::map<std::string, std::vector<double>> cell;
        for (const Shape& shape : shapes) {
          char case_name[96];
          std::snprintf(case_name, sizeof(case_name),
                        "fig19 v=%d k=%d sparsity=%.2f shape=%dx%d", v, kdim,
                        sparsity, shape.m, shape.k);
          run_case(case_name, [&] {
            // C[m x k_shape] sparse, inner dimension kdim.
            const int m = shape.m, n = shape.k;
            const double dense_cycles = dense.hgemm_cycles(m, kdim, n);
            Rng rng(bench_seed(shape, sparsity, v) + 13);
            Cvs mask_host = make_cvs_mask(m, n, v, sparsity, rng, 0.25);

            gpusim::Device dev = session.device();
            auto mask = to_device(dev, mask_host);
            auto a = dev.alloc<half_t>(static_cast<std::size_t>(m) * kdim);
            auto b = dev.alloc<half_t>(static_cast<std::size_t>(kdim) * n);
            auto out = dev.alloc<half_t>(mask_host.col_idx.size() *
                                         static_cast<std::size_t>(v));
            DenseDevice<half_t> da{a, m, kdim, kdim, Layout::kRowMajor};
            DenseDevice<half_t> db{b, kdim, n, kdim, Layout::kColMajor};

            cell["fpu"].push_back(
                dense_cycles /
                kernels::sddmm_fpu_subwarp(dev, da, db, mask, out)
                    .cycles(hw, params));
            if (v > 1) {
              cell["wmma"].push_back(
                  dense_cycles /
                  kernels::sddmm_wmma_warp(dev, da, db, mask, out)
                      .cycles(hw, params));
              using kernels::InvertedPatternMode;
              cell["mma (reg)"].push_back(
                  dense_cycles /
                  kernels::sddmm_octet(dev, da, db, mask, out,
                                       {InvertedPatternMode::kExtraRegisters})
                      .cycles(hw, params));
              cell["mma (shfl)"].push_back(
                  dense_cycles /
                  kernels::sddmm_octet(dev, da, db, mask, out,
                                       {InvertedPatternMode::kShuffle})
                      .cycles(hw, params));
              cell["mma (arch)"].push_back(
                  dense_cycles /
                  kernels::sddmm_octet(dev, da, db, mask, out,
                                       {InvertedPatternMode::kArchSwitch})
                      .cycles(hw, params));
            }
          });
        }
        for (const auto& [name, samples] : cell) {
          std::printf("%-4d %-4d %-8.2f %-12s %s\n", v, kdim, sparsity,
                      name.c_str(), to_string(summarize(samples)).c_str());
          all[{v, name}][sparsity].insert(all[{v, name}][sparsity].end(),
                                          samples.begin(), samples.end());
        }
      }
    }
  }

  std::printf("\n# headline: geomean speedup of mma (reg) over baselines "
              "(paper: 1.27-3.03x over fpu, 0.93-1.44x over wmma)\n");
  for (const char* basek : {"fpu", "wmma"}) {
    double lo = 1e30, hi = 0;
    for (int v : {2, 4, 8}) {
      for (double sparsity : sparsity_grid()) {
        const auto& mma = all[{v, "mma (reg)"}][sparsity];
        const auto& ref = all[{v, basek}][sparsity];
        if (mma.empty() || ref.empty()) continue;
        const double ratio = geomean(mma) / geomean(ref);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
      }
    }
    std::printf("mma (reg) vs %-6s: %.2f-%.2fx\n", basek, lo, hi);
  }
  // mma (arch) should dominate the other two strategies.
  int arch_wins = 0, total_cells = 0;
  for (int v : {2, 4, 8}) {
    for (double sparsity : sparsity_grid()) {
      const double arch = geomean(all[{v, "mma (arch)"}][sparsity]);
      const double reg = geomean(all[{v, "mma (reg)"}][sparsity]);
      const double shfl = geomean(all[{v, "mma (shfl)"}][sparsity]);
      if (arch >= reg && arch >= shfl) ++arch_wins;
      ++total_cells;
    }
  }
  std::printf("# mma (arch) >= both software strategies in %d/%d cells "
              "(paper: consistently)\n",
              arch_wins, total_cells);
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// Offline dispatch-policy autotuner driver.
//
// Sweeps every dispatchable registry kernel over a grid of shape
// classes per architecture preset (kernels/autotune.hpp) and emits the
// winners as a versioned vsparse-policy-v1 JSON cache for kAuto to
// consult (kernels/policy.hpp).
//
//   autotune_policy                      JSON cache on stdout
//   autotune_policy --out=FILE           write FILE, summary on stdout
//   autotune_policy --arch=A,B           sweep presets A and B
//   autotune_policy --op=spmm|sddmm      tune one op only
//   autotune_policy --ms= --ks= --ns=    override the extent grids
//                   --vs= --sparsities=  (comma lists)
//   autotune_policy --seed=N             problem-generator seed
//
// The sweep is deterministic for a given spec: each shape class hashes
// its own coordinates into the generator seed, so results do not
// depend on axis iteration order.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <vector>

#include "vsparse/bench/runner.hpp"
#include "vsparse/kernels/autotune.hpp"
#include "vsparse/kernels/policy.hpp"

namespace vsparse::bench {
namespace {

std::vector<int> parse_int_list(const char* s) {
  std::vector<int> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    out.push_back(static_cast<int>(std::strtol(p, &end, 10)));
    if (end == p) {
      std::fprintf(stderr, "bad integer list: %s\n", s);
      std::exit(2);
    }
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

std::vector<double> parse_double_list(const char* s) {
  std::vector<double> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    out.push_back(std::strtod(p, &end));
    if (end == p) {
      std::fprintf(stderr, "bad number list: %s\n", s);
      std::exit(2);
    }
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

int run(int argc, char** argv) {
  kernels::PolicyTuneSpec spec = kernels::default_policy_tune_spec();
  std::string out_path;

  // Resolve --arch through the preset table (validates names; --arch=help
  // lists the table).  Without the flag the spec default stands.
  if (arch_flag_present(argc, argv)) {
    spec.arches.clear();
    for (const gpusim::DeviceConfig& hw :
         parse_arch_list(argc, argv, "volta-v100")) {
      spec.arches.emplace_back(hw.arch);
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--op=", 5) == 0) {
      const char* op = arg + 5;
      spec.tune_spmm = std::strcmp(op, "spmm") == 0;
      spec.tune_sddmm = std::strcmp(op, "sddmm") == 0;
      if (!spec.tune_spmm && !spec.tune_sddmm) {
        std::fprintf(stderr, "unknown --op=%s (expected spmm or sddmm)\n", op);
        return 2;
      }
    } else if (std::strncmp(arg, "--ms=", 5) == 0) {
      spec.ms = parse_int_list(arg + 5);
    } else if (std::strncmp(arg, "--ks=", 5) == 0) {
      spec.ks = parse_int_list(arg + 5);
    } else if (std::strncmp(arg, "--ns=", 5) == 0) {
      spec.ns = parse_int_list(arg + 5);
    } else if (std::strncmp(arg, "--vs=", 5) == 0) {
      spec.vs = parse_int_list(arg + 5);
    } else if (std::strncmp(arg, "--sparsities=", 13) == 0) {
      spec.sparsities = parse_double_list(arg + 13);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      spec.seed = std::strtoull(arg + 7, nullptr, 10);
    }
  }

  const kernels::PolicyCache cache = kernels::autotune_policy(spec);

  if (out_path.empty()) {
    std::fputs(cache.to_json().c_str(), stdout);
    return 0;
  }
  cache.save(out_path);

  std::vector<std::string> keys;
  keys.reserve(cache.entries().size());
  for (const auto& [key, entry] : cache.entries()) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::printf("# policy autotune: %zu entries, %zu arch(es), %s\n",
              cache.size(), spec.arches.size(), kernels::kPolicyCacheVersion);
  for (const std::string& key : keys) {
    const kernels::PolicyEntry& entry = cache.entries().at(key);
    std::printf("%-40s %-20s %12.1f\n", key.c_str(), entry.kernel.c_str(),
                entry.cycles);
  }
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// Ablation: the §5.1 TileN trade-off in the FPU subwarp SpMM —
// guideline V (wide vector loads need TileN/8 wide thread slices) vs
// guideline II (grid size shrinks with TileN).  The paper found the
// narrow TileN=16 (LDG.32, bigger grid) wins overall, which is why the
// FPU baseline's Sectors/Req sits near 4 in Table 2.
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int k = scale == Scale::kPaper ? 1024 : 512;
  const int n = 256;
  DenseBaseline base(session.hw(), {}, sim);
  const auto& hw = base.hw();

  std::printf("# Ablation: FPU subwarp SpMM TileN (guideline V vs II), "
              "%dx%dx%d, V=4\n",
              m, k, n);
  std::printf("%-7s %-8s %12s %10s %10s %12s\n", "TileN", "sparsity",
              "cycles", "grid", "sect/req", "widest LDG");
  for (int tile_n : {16, 32, 64}) {
    for (double sparsity : {0.7, 0.9}) {
      char case_name[64];
      std::snprintf(case_name, sizeof(case_name),
                    "ablation_tilen tile_n=%d sparsity=%.2f", tile_n,
                    sparsity);
      run_case(case_name, [&] {
      gpusim::Device dev = session.device();
      Cvs a_host = make_suite_cvs({m, k}, sparsity, 4);
      auto a = to_device(dev, a_host);
      auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
      auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
      DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
      DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
      auto r = kernels::spmm_fpu_subwarp(dev, a, db, dc, {.tile_n = tile_n});
      const char* widest = r.stats.ldg128 > 0   ? "LDG.128"
                           : r.stats.ldg64 > 0  ? "LDG.64"
                           : r.stats.ldg32 > 0  ? "LDG.32"
                                                : "LDG.16";
      std::printf("%-7d %-8.2f %12.0f %10d %10.2f %12s\n", tile_n, sparsity,
                  r.cycles(hw), r.config.grid,
                  r.stats.sectors_per_request(), widest);
      });
    }
  }
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// Table 2: the five design guidelines measured on the three SpMM
// implementations (MMA = octet tiling, CUDA = FPU subwarp baseline,
// Blocked-ELL = cuSPARSE) at V in {4, 8} on A[2048x1024] x B[1024x256],
// 90% sparsity: No-Instruction stall (guideline I), thread blocks (II),
// Wait stall (III), Short-Scoreboard stall (IV), Sectors/Req (V).
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::bench {
namespace {

void print_row(const char* name, const kernels::KernelRun& r,
               const gpusim::DeviceConfig& hw) {
  const auto est = r.cost(hw);
  std::printf("%-12s %8.1f%% %10d %8.1f%% %8.1f%% %10.2f\n", name,
              est.stall_no_instruction * 100, r.config.grid,
              est.stall_wait * 100, est.stall_short_scoreboard * 100,
              r.stats.sectors_per_request());
}

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int k = scale == Scale::kPaper ? 1024 : 512;
  const int n = 256;
  DenseBaseline base(session.hw(), {}, sim);

  std::printf("# Table 2: 5-guideline profile of SpMM kernels, %dx%dx%d @ "
              "90%%\n",
              m, k, n);
  for (int v : {4, 8}) {
    std::printf("\nSpMM, V=%d      %-8s %10s %8s %9s %10s\n", v, "NoInstr",
                "#TB", "Wait", "ShortSb", "Sect/Req");
    char case_name[48];
    std::snprintf(case_name, sizeof(case_name), "table2 v=%d", v);
    run_case(case_name, [&] {
    gpusim::Device dev = session.device();
    Cvs a_host = make_suite_cvs({m, k}, 0.9, v);
    auto a = to_device(dev, a_host);
    BlockedEll ell_host = make_suite_blocked_ell({m, k}, 0.9, v);
    auto ell = to_device(dev, ell_host);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
    DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};

    print_row("MMA", kernels::spmm_octet(dev, a, db, dc), base.hw());
    dev.flush_all_caches();
    print_row("CUDA", kernels::spmm_fpu_subwarp(dev, a, db, dc), base.hw());
    dev.flush_all_caches();
    print_row("Blocked-ELL", kernels::spmm_blocked_ell(dev, ell, db, dc),
              base.hw());
    });
  }
  std::printf(
      "\n# paper (V=4): MMA 1.1%% / 2048 / 4.7%% / 4.5%% / 12.56;"
      "\n#              CUDA 11.0%% / 2048 / 11.6%% / 2.6%% / 4.04;"
      "\n#              Blocked-ELL 42.6%% / 1024 / 21.0%% / 11.9%% / 14.92\n"
      "# paper (V=8): MMA 1.1%% / 1024 / 6.2%% / 2.6%% / 13.22;"
      "\n#              CUDA 52.2%% / 1024 / 8.3%% / 2.0%% / 4.27;"
      "\n#              Blocked-ELL 35.1%% / 512 / 16.2%% / 12.1%% / 13.85\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// The serving soak driver — the long-lived many-launch scenario the
// supervisor exists for, run as a bench: N supervised requests through
// one Supervisor under a seeded fault storm (serve/soak.hpp), with
// bounded-queue admission and per-request bit-exactness verification.
//
//   --soak=N            requests to submit (default 200)
//   --seed=S            storm + data seed (default 2021)
//   --queue=CAP         admission queue capacity (default 64)
//   --quota=BYTES       per-request memory quota; enables the
//                       oversized-request mechanism (default 512 KiB,
//                       0 disables)
//   --retries=K         max retries per ladder rung (default 2)
//   --serve             print every per-request ServeReport JSON line
//   --serve-report=FILE write the vsparse-serve-v1 JSON artifact
//   --threads=N / --trace=PREFIX / --trace-sample=N   as everywhere
//
// The summary and report are deterministic: same --seed and policy
// give byte-identical output at any --threads=N (the soak test holds
// this to 1/2/8).  Only the `# throughput:` line carries wall clock.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "vsparse/bench/runner.hpp"
#include "vsparse/serve/soak.hpp"

namespace vsparse::bench {
namespace {

std::uint64_t flag_u64(int argc, char** argv, const char* name,
                       std::uint64_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::strtoull(argv[i] + len + 1, nullptr, 10);
    }
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

const char* flag_str(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

int run(int argc, char** argv) {
  DriverSession session(argc, argv);

  serve::SoakConfig config;
  config.requests =
      static_cast<int>(flag_u64(argc, argv, "--soak", 200));
  config.seed = flag_u64(argc, argv, "--seed", 2021);
  config.threads = session.threads();
  config.queue_capacity =
      static_cast<std::size_t>(flag_u64(argc, argv, "--queue", 64));
  config.memory_quota_bytes = static_cast<std::size_t>(
      flag_u64(argc, argv, "--quota", std::size_t{1} << 19));
  config.retry.max_retries =
      static_cast<int>(flag_u64(argc, argv, "--retries", 2));
  config.retry.seed = config.seed;
  config.trace = session.sim().trace;

  std::printf("# Serve soak: %d supervised requests, seed %llu, queue %zu, "
              "quota %zu B, retries %d\n",
              config.requests, static_cast<unsigned long long>(config.seed),
              config.queue_capacity, config.memory_quota_bytes,
              config.retry.max_retries);

  serve::SoakResult result;
  run_case("serve_soak", [&] { result = serve::run_soak(config); });

  std::printf(
      "# soak-summary: {\"requests\":%llu,\"completed\":%llu,"
      "\"retries\":%llu,\"fallbacks\":%llu,\"give_ups\":%llu,"
      "\"rejected\":%llu,\"queue_accepted\":%llu,\"queue_rejected\":%llu,"
      "\"mismatches\":%llu}\n",
      static_cast<unsigned long long>(result.totals.requests),
      static_cast<unsigned long long>(result.totals.completed),
      static_cast<unsigned long long>(result.totals.retries),
      static_cast<unsigned long long>(result.totals.fallbacks),
      static_cast<unsigned long long>(result.totals.give_ups),
      static_cast<unsigned long long>(result.totals.rejected),
      static_cast<unsigned long long>(result.queue_accepted),
      static_cast<unsigned long long>(result.queue_rejected),
      static_cast<unsigned long long>(result.mismatches));
  if (result.mismatches > 0) {
    std::printf("# soak-summary: FAIL — %llu recovered launches were not "
                "bit-identical to the fault-free reference\n",
                static_cast<unsigned long long>(result.mismatches));
  }

  if (flag_present(argc, argv, "--serve")) {
    std::printf("%s\n", result.report_json.c_str());
  }
  if (const char* path = flag_str(argc, argv, "--serve-report")) {
    std::ofstream out(path);
    out << result.report_json << "\n";
    std::printf("# serve-report: %s %s\n", path,
                out.good() ? "written" : "WRITE FAILED");
  }
  return session.finish() | (result.mismatches > 0 ? 1 : 0);
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

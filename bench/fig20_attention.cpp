// Figure 20: latency breakdown of the self-attention layer —
// QKᵀ(⊙C), Softmax, AV, Others (projections) — dense vs sparse, for
// sequence lengths l, head dims k, and mask sparsities {0.9, 0.95,
// 0.98}.  The paper's observations: the sparse SpMM + softmax cut the
// AV/Softmax terms everywhere; the SDDMM loses to dense QKᵀ at k = 64
// but wins at k = 256.
#include <cstdio>
#include <vector>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/transformer/attention.hpp"

namespace vsparse::bench {
namespace {

struct Parts {
  double qk, softmax, av, others;
  double total() const { return qk + softmax + av + others; }
};

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const std::vector<int> seqs = scale == Scale::kPaper
                                    ? std::vector<int>{2048, 4096, 8192}
                                    : std::vector<int>{1024, 2048};
  DenseBaseline dense_base(session.hw(), {}, sim);
  const auto& hw = dense_base.hw();
  const auto& params = dense_base.params();

  std::printf("# Figure 20: self-attention latency breakdown "
              "(model kilocycles)\n");
  std::printf("%-6s %-4s %-9s %-7s %9s %9s %9s %9s %9s %8s\n", "l", "k",
              "variant", "sparsity", "QK^T", "Softmax", "AV", "Others",
              "total", "speedup");

  for (int seq : seqs) {
    for (int kdim : {64, 256}) {
      // "Others": the Q/K/V and output projections (d_model = 4 heads x
      // kdim), identical in both variants.
      const int d_model = 4 * kdim;
      const double others =
          4.0 * dense_base.hgemm_cycles(seq, d_model, d_model) / 1000.0;

      char case_name[96];
      std::snprintf(case_name, sizeof(case_name),
                    "fig20 dense l=%d k=%d", seq, kdim);
      // ---- dense attention head -------------------------------------
      Parts dense{};
      run_case(case_name, [&] {
        gpusim::Device dev =
            session.device(std::size_t{2} << 30);
        auto q = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        auto k = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        auto v = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        auto s = dev.alloc<half_t>(static_cast<std::size_t>(seq) * seq);
        auto o = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        DenseDevice<half_t> dq{q, seq, kdim, kdim, Layout::kRowMajor};
        DenseDevice<half_t> dk{k, seq, kdim, kdim, Layout::kRowMajor};
        DenseDevice<half_t> dv{v, seq, kdim, kdim, Layout::kRowMajor};
        DenseDevice<half_t> ds{s, seq, seq, seq, Layout::kRowMajor};
        DenseDevice<half_t> dout{o, seq, kdim, kdim, Layout::kRowMajor};
        auto br = transformer::dense_attention_head(dev, dq, dk, dv, ds, dout);
        dense = {br.qk.cycles(hw, params) / 1000.0,
                 br.softmax.cycles(hw, params) / 1000.0,
                 br.av.cycles(hw, params) / 1000.0, others};
      });
      std::printf("%-6d %-4d %-9s %-7s %9.1f %9.1f %9.1f %9.1f %9.1f %8s\n",
                  seq, kdim, "dense", "-", dense.qk, dense.softmax, dense.av,
                  dense.others, dense.total(), "1.00");

      // ---- sparse attention head per sparsity -------------------------
      for (double sparsity : {0.90, 0.95, 0.98}) {
        std::snprintf(case_name, sizeof(case_name),
                      "fig20 sparse l=%d k=%d sparsity=%.2f", seq, kdim,
                      sparsity);
        run_case(case_name, [&] {
        gpusim::Device dev =
            session.device(std::size_t{2} << 30);
        Rng rng(7000 + seq + kdim);
        Cvs mask_host = make_attention_mask(seq, 8, 256, sparsity, rng);
        auto mask = to_device(dev, mask_host);
        auto q = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        auto k = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        auto v = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        auto scratch = dev.alloc<half_t>(mask_host.values.size());
        auto o = dev.alloc<half_t>(static_cast<std::size_t>(seq) * kdim);
        DenseDevice<half_t> dq{q, seq, kdim, kdim, Layout::kRowMajor};
        DenseDevice<half_t> dk{k, seq, kdim, kdim, Layout::kRowMajor};
        DenseDevice<half_t> dv{v, seq, kdim, kdim, Layout::kRowMajor};
        DenseDevice<half_t> dout{o, seq, kdim, kdim, Layout::kRowMajor};
        auto br = transformer::sparse_attention_head(dev, dq, dk, dv, mask,
                                                     scratch, dout);
        Parts sp{br.qk.cycles(hw, params) / 1000.0,
                 br.softmax.cycles(hw, params) / 1000.0,
                 br.av.cycles(hw, params) / 1000.0, others};
        char sbuf[8];
        std::snprintf(sbuf, sizeof(sbuf), "%.2f", sparsity);
        char spd[16];
        std::snprintf(spd, sizeof(spd), "%.2f", dense.total() / sp.total());
        std::printf(
            "%-6d %-4d %-9s %-7s %9.1f %9.1f %9.1f %9.1f %9.1f %8s\n", seq,
            kdim, "sparse", sbuf, sp.qk, sp.softmax, sp.av, sp.others,
            sp.total(), spd);
        });
      }
    }
  }
  std::printf("\n# paper shape: whole-layer speedup 1.35-1.78x @90%%, "
              "1.48-2.09x @95%%, 1.57-2.30x @98%%; sparse QK^T loses to "
              "dense at k=64 but wins at k=256\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

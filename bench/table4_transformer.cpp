// Table 4: end-to-end sparse-transformer inference — throughput, peak
// memory, and the numerical-fidelity proxy standing in for the paper's
// trained-model accuracy (see DESIGN.md's substitution table).
//
// Model: 4 layers, 4 heads, head dim 64, FFN 1024, fixed banded+random
// attention mask (band 256) at 90% sparsity with 8x1 vector grain,
// batch 8 — the paper's LRA configuration (sequence length 4000,
// padded here to a multiple of 64: 4096 at paper scale).
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/transformer/fidelity.hpp"
#include "vsparse/transformer/model.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  using transformer::Mode;
  transformer::ModelConfig cfg;
  cfg.seq = scale == Scale::kPaper ? 4096 : 1024;
  cfg.layers = 4;
  cfg.batch = 8;
  const double clock_hz = 1.38e9;  // V100 boost clock

  std::printf("# Table 4: sparse transformer inference (seq=%d, %d layers, "
              "%d heads x %d, batch %d, 90%% sparsity)\n",
              cfg.seq, cfg.layers, cfg.heads, cfg.head_dim, cfg.batch);
  std::printf("%-22s %-14s %-14s %-14s\n", "", "Dense(float)", "Dense(half)",
              "Sparse(half)");

  double thr[3], mem[3];
  const Mode modes[3] = {Mode::kDenseFloat, Mode::kDenseHalf,
                         Mode::kSparseHalf};
  const char* mode_names[3] = {"dense_float", "dense_half", "sparse_half"};
  for (int i = 0; i < 3; ++i) {
    char case_name[48];
    std::snprintf(case_name, sizeof(case_name), "table4 mode=%s",
                  mode_names[i]);
    run_case(case_name, [&] {
      gpusim::Device dev = session.device(std::size_t{6} << 30);
      cfg.mode = modes[i];
      auto r = transformer::run_transformer_forward(dev, cfg, 17);
      thr[i] = r.throughput(clock_hz, cfg.batch);
      mem[i] = static_cast<double>(r.peak_memory_bytes);
    });
  }

  std::printf("%-22s %-14.1f %-14.1f %-14.1f\n", "Throughput (seq/s)", thr[0],
              thr[1], thr[2]);
  std::printf("%-22s %-14s %-14s %-14s\n", "Peak Memory", "", "", "");
  const auto fmt_mem = [](double bytes) {
    static char buf[4][32];
    static int idx = 0;
    char* b = buf[idx++ % 4];
    if (bytes > (1u << 30)) {
      std::snprintf(b, 32, "%.2f GB", bytes / (1u << 30));
    } else {
      std::snprintf(b, 32, "%.1f MB", bytes / (1u << 20));
    }
    return b;
  };
  std::printf("%-22s %-14s %-14s %-14s\n", "", fmt_mem(mem[0]),
              fmt_mem(mem[1]), fmt_mem(mem[2]));

  std::printf("\n# speedups: sparse(half) is %.2fx over dense(float), "
              "%.2fx over dense(half)  (paper: 3.45x / 1.41x)\n",
              thr[2] / thr[0], thr[2] / thr[1]);
  std::printf("# memory reductions: %.2fx vs dense(float), %.2fx vs "
              "dense(half)  (paper: 26.74x / 13.37x)\n",
              mem[0] / mem[2], mem[1] / mem[2]);

  // ---- accuracy substitute: numerical fidelity -----------------------
  transformer::FidelityConfig fcfg;
  fcfg.seq = scale == Scale::kPaper ? 512 : 256;
  fcfg.trials = 20;
  transformer::FidelityReport rep{};
  run_case("table4 fidelity", [&] {
    rep = transformer::measure_fidelity(fcfg, 99);
  });
  std::printf("\n# accuracy substitute (paper: 65.12%% / 65.09%% / 65.01%% "
              "on trained LRA — we measure numerical fidelity instead):\n");
  std::printf("# dense(half)  vs fp32: cosine %.6f, decision agreement "
              "%.0f%%\n",
              rep.dense_half_cosine, rep.dense_half_agreement * 100);
  std::printf("# sparse(half) vs masked fp32: cosine %.6f, decision "
              "agreement %.0f%%, max rel err %.3g\n",
              rep.sparse_half_cosine, rep.sparse_half_agreement * 100,
              rep.sparse_half_max_rel_err);
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// Table 1: pipeline-stall breakdown of the Blocked-ELL SpMM kernel at
// block size 4 on A[2048x1024] x B[1024x256], 90% sparsity.
// Paper: No Instruction 42.6%, Wait 21.0%, Short Scoreboard 11.9%.
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int k = scale == Scale::kPaper ? 1024 : 512;
  const int n = 256;
  DenseBaseline base(session.hw(), {}, sim);

  std::printf("# Table 1: stall reasons, Blocked-ELL SpMM, block=4, "
              "%dx%dx%d @ 90%%\n",
              m, k, n);
  run_case("table1 blocked_ell block=4", [&] {
  gpusim::Device dev = session.device();
  BlockedEll ell_host = make_suite_blocked_ell({m, k}, 0.9, 4);
  auto ell = to_device(dev, ell_host);
  auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
  auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
  DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
  DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
  auto run_result = kernels::spmm_blocked_ell(dev, ell, db, dc);
  const auto est = run_result.cost(base.hw());

  std::printf("%-18s %-14s %-8s\n", "Block Size", "stall", "fraction");
  std::printf("%-18d %-14s %6.1f%%   (paper: 42.6%%)\n", 4, "No Instruction",
              est.stall_no_instruction * 100);
  std::printf("%-18d %-14s %6.1f%%   (paper: 21.0%%)\n", 4, "Wait",
              est.stall_wait * 100);
  std::printf("%-18d %-14s %6.1f%%   (paper: 11.9%%)\n", 4,
              "Short Scoreboard", est.stall_short_scoreboard * 100);
  std::printf("\n# SASS-size estimate: %d instructions (paper: ~4600 lines "
              "vs a 768-instruction L0)\n",
              run_result.config.profile.static_instrs);
  });
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

// Figure 5: dense GEMM vs fine-grained SpMM under single vs half
// precision, on A[2048x1024] x B[1024x256] with 90% sparsity:
//   * L1 missed sectors (halving the precision cuts the GEMM's misses
//     far more than the SpMM's — the data-reuse argument of §3.1),
//   * max compute-pipe utilization (the TCU absorbs the GEMM's math),
//   * executed math instructions (HMMA fusion removes ~92% of them).
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/dense/gemm.hpp"
#include "vsparse/kernels/spmm/spmm_fpu.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int k = scale == Scale::kPaper ? 1024 : 512;
  const int n = 256;
  const double sparsity = 0.9;
  DenseBaseline base(session.hw(), {}, sim);
  const auto& hw = base.hw();

  std::printf("# Figure 5: GEMM vs SpMM profile, %dx%dx%d, %.0f%% sparse\n",
              m, k, n, sparsity * 100);
  std::printf("%-14s %-10s %16s %10s %14s\n", "kernel", "precision",
              "L1$ missed", "pipe util", "math instrs");

  Rng rng(42);
  Cvs a_host = make_cvs(m, k, 1, sparsity, rng, 0.25);

  const auto report = [&](const char* name, const char* prec,
                          const kernels::KernelRun& run_result) {
    const auto est = run_result.cost(hw);
    std::printf("%-14s %-10s %16llu %9.1f%% %14llu\n", name, prec,
                static_cast<unsigned long long>(
                    run_result.stats.l1_sector_misses),
                est.max_compute_pipe_utilization * 100,
                static_cast<unsigned long long>(
                    run_result.stats.math_instructions()));
    return run_result;
  };

  // ---- dense GEMM ------------------------------------------------------
  kernels::KernelRun gemm_s, gemm_h, spmm_s, spmm_h;
  run_case("fig05 gemm single", [&] {
    gpusim::Device dev = session.device();
    auto a = dev.alloc<float>(static_cast<std::size_t>(m) * k);
    auto b = dev.alloc<float>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<float>(static_cast<std::size_t>(m) * n);
    DenseDevice<float> da{a, m, k, k, Layout::kRowMajor};
    DenseDevice<float> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<float> dc{c, m, n, n, Layout::kRowMajor};
    gemm_s = report("GEMM", "single", kernels::sgemm_fpu(dev, da, db, dc));
  });
  run_case("fig05 gemm half", [&] {
    gpusim::Device dev = session.device();
    auto a = dev.alloc<half_t>(static_cast<std::size_t>(m) * k);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
    DenseDevice<half_t> da{a, m, k, k, Layout::kRowMajor};
    DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
    gemm_h = report("GEMM", "half", kernels::hgemm_tcu(dev, da, db, dc));
  });
  // ---- fine-grained SpMM ------------------------------------------------
  run_case("fig05 spmm single", [&] {
    gpusim::Device dev = session.device();
    auto a = to_device_f32(dev, a_host);
    auto b = dev.alloc<float>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<float>(static_cast<std::size_t>(m) * n);
    DenseDevice<float> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<float> dc{c, m, n, n, Layout::kRowMajor};
    spmm_s = report("SpMM(sputnik)", "single",
                    kernels::spmm_fpu_subwarp_f32(dev, a, db, dc));
  });
  run_case("fig05 spmm half", [&] {
    gpusim::Device dev = session.device();
    auto a = to_device(dev, a_host);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
    DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
    spmm_h = report("SpMM(sputnik)", "half",
                    kernels::spmm_fpu_subwarp(dev, a, db, dc));
  });

  const double gemm_miss_drop =
      1.0 - static_cast<double>(gemm_h.stats.l1_sector_misses) /
                static_cast<double>(gemm_s.stats.l1_sector_misses);
  const double spmm_miss_drop =
      1.0 - static_cast<double>(spmm_h.stats.l1_sector_misses) /
                static_cast<double>(spmm_s.stats.l1_sector_misses);
  const double instr_drop =
      1.0 - static_cast<double>(gemm_h.stats.math_instructions()) /
                static_cast<double>(gemm_s.stats.math_instructions());
  std::printf("\n# half precision cuts GEMM L1 missed sectors by %.1f%% "
              "(paper: 77.0%%) but SpMM only by %.1f%% (paper: 48.8%%)\n",
              gemm_miss_drop * 100, spmm_miss_drop * 100);
  std::printf("# HMMA fusion removes %.1f%% of the GEMM's math "
              "instructions (paper: 92.3%%)\n",
              instr_drop * 100);
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

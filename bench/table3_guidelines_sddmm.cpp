// Table 3: the five design guidelines measured on the three SDDMM
// implementations (MMA = octet/reg, CUDA = FPU subwarp, WMMA = classic
// warp tiling) at V in {4, 8} on A[2048x256] x B[256x1024] with the
// 2048x1024 output mask 90% sparse.
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/formats/generate.hpp"
#include "vsparse/kernels/sddmm/sddmm_fpu.hpp"
#include "vsparse/kernels/sddmm/sddmm_octet.hpp"
#include "vsparse/kernels/sddmm/sddmm_wmma.hpp"

namespace vsparse::bench {
namespace {

void print_row(const char* name, const kernels::KernelRun& r,
               const gpusim::DeviceConfig& hw) {
  const auto est = r.cost(hw);
  std::printf("%-8s %8.1f%% %10d %8.1f%% %8.1f%% %10.2f\n", name,
              est.stall_no_instruction * 100, r.config.grid,
              est.stall_wait * 100, est.stall_short_scoreboard * 100,
              r.stats.sectors_per_request());
}

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int kdim = 256;
  const int n = scale == Scale::kPaper ? 1024 : 512;
  DenseBaseline base(session.hw(), {}, sim);

  std::printf("# Table 3: 5-guideline profile of SDDMM kernels, "
              "%dx%dx%d, C 90%% sparse\n",
              m, kdim, n);
  for (int v : {4, 8}) {
    std::printf("\nSDDMM, V=%d %-8s %10s %8s %9s %10s\n", v, "NoInstr",
                "#TB", "Wait", "ShortSb", "Sect/Req");
    char case_name[48];
    std::snprintf(case_name, sizeof(case_name), "table3 v=%d", v);
    run_case(case_name, [&] {
    gpusim::Device dev = session.device();
    Rng rng(991 + v);
    Cvs mask_host = make_cvs_mask(m, n, v, 0.9, rng, 0.25);
    auto mask = to_device(dev, mask_host);
    auto a = dev.alloc<half_t>(static_cast<std::size_t>(m) * kdim);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(kdim) * n);
    auto out = dev.alloc<half_t>(mask_host.col_idx.size() *
                                 static_cast<std::size_t>(v));
    DenseDevice<half_t> da{a, m, kdim, kdim, Layout::kRowMajor};
    DenseDevice<half_t> db{b, kdim, n, kdim, Layout::kColMajor};

    print_row("MMA",
              kernels::sddmm_octet(
                  dev, da, db, mask, out,
                  {kernels::InvertedPatternMode::kExtraRegisters}),
              base.hw());
    dev.flush_all_caches();
    print_row("CUDA", kernels::sddmm_fpu_subwarp(dev, da, db, mask, out),
              base.hw());
    dev.flush_all_caches();
    print_row("WMMA", kernels::sddmm_wmma_warp(dev, da, db, mask, out),
              base.hw());
    });
  }
  std::printf(
      "\n# paper (V=4): MMA 0.8%% / 16384 / 10.7%% / 2.1%% / 3.83;"
      "\n#              CUDA 6.1%% / 16384 / 28.1%% / 2.5%% / 3.53;"
      "\n#              WMMA 0.3%% / 16384 / 10.6%% / 14.4%% / 3.82\n"
      "# paper (V=8): MMA 1.0%% / 8192 / 11.0%% / 1.9%% / 9.25;"
      "\n#              CUDA 7.3%% / 16384 / 24.6%% / 3.1%% / 3.33;"
      "\n#              WMMA 0.4%% / 8192 / 9.5%% / 17.9%% / 9.26\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

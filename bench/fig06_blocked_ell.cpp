// Figure 6: Blocked-ELL SpMM speedup over cublasHgemm for block sizes
// {4, 8, 16} across the sparsity grid — the cuSPARSE kernel only pays
// off once the block size reaches 8-16, which is the model-quality vs
// kernel-performance tension motivating the column-vector encoding.
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/bench/summary.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const auto shapes = suite_shapes(scale);
  const int n = 256;
  DenseBaseline dense(session.hw(), {}, sim);
  const auto& hw = dense.hw();
  const auto& params = dense.params();

  std::printf("# Figure 6: Blocked-ELL SpMM speedup over cublasHgemm\n");
  std::printf("%-6s %-8s %s\n", "block", "sparsity",
              "geomean  [min q1 med q3 max]");

  for (int block : {4, 8, 16}) {
    for (double sparsity : sparsity_grid()) {
      std::vector<double> samples;
      for (const Shape& shape : shapes) {
        char case_name[96];
        std::snprintf(case_name, sizeof(case_name),
                      "fig06 block=%d sparsity=%.2f shape=%dx%d", block,
                      sparsity, shape.m, shape.k);
        run_case(case_name, [&] {
          gpusim::Device dev = session.device();
          BlockedEll ell_host = make_suite_blocked_ell(shape, sparsity, block);
          auto ell = to_device(dev, ell_host);
          auto b = dev.alloc<half_t>(static_cast<std::size_t>(shape.k) * n);
          auto c = dev.alloc<half_t>(static_cast<std::size_t>(shape.m) * n);
          DenseDevice<half_t> db{b, shape.k, n, n, Layout::kRowMajor};
          DenseDevice<half_t> dc{c, shape.m, n, n, Layout::kRowMajor};
          samples.push_back(
              dense.hgemm_cycles(shape.m, shape.k, n) /
              kernels::spmm_blocked_ell(dev, ell, db, dc).cycles(hw, params));
        });
      }
      std::printf("%-6d %-8.2f %s\n", block, sparsity,
                  to_string(summarize(samples)).c_str());
    }
  }
  std::printf("\n# paper shape: block=4 stays below 1x until extreme "
              "sparsity; block=16 crosses around 70-80%%\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

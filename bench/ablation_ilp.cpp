// Ablation: the §5.4 instruction-level-parallelism trick in the octet
// SpMM — batching all TileK/4 B-fragment loads, then a
// __threadfence_block, then all MMAs (vs interleaving load/compute,
// which lets the compiler serialize them on shared registers).
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int k = scale == Scale::kPaper ? 1024 : 512;
  const int n = 256;
  DenseBaseline base(session.hw(), {}, sim);
  const auto& hw = base.hw();

  std::printf("# Ablation: §5.4 load batching (ILP) in spmm_octet, "
              "%dx%dx%d, V=4\n",
              m, k, n);
  std::printf("%-8s %-14s %-14s %s\n", "sparsity", "batched", "interleaved",
              "batched speedup");
  for (double sparsity : sparsity_grid()) {
    char case_name[64];
    std::snprintf(case_name, sizeof(case_name), "ablation_ilp sparsity=%.2f",
                  sparsity);
    run_case(case_name, [&] {
    gpusim::Device dev = session.device();
    Cvs a_host = make_suite_cvs({m, k}, sparsity, 4);
    auto a = to_device(dev, a_host);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
    DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};
    const double on =
        kernels::spmm_octet(dev, a, db, dc, {.batch_loads = true}).cycles(hw);
    dev.flush_all_caches();
    const double off =
        kernels::spmm_octet(dev, a, db, dc, {.batch_loads = false}).cycles(hw);
    std::printf("%-8.2f %12.0f c %12.0f c %10.2fx\n", sparsity, on, off,
                off / on);
    });
  }
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }

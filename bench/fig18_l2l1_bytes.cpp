// Figure 18: total bytes moved from L2 to L1 by the octet-tiling SpMM
// on the column-vector encoding vs the Blocked-ELL kernel, at equal
// problem size and sparsity — the §4 claim that data reuse is
// independent of the block's column count (and the vector encoding
// even loads slightly less).
#include <cstdio>

#include "vsparse/bench/runner.hpp"
#include "vsparse/bench/scale.hpp"
#include "vsparse/bench/suite.hpp"
#include "vsparse/kernels/spmm/spmm_blocked_ell.hpp"
#include "vsparse/kernels/spmm/spmm_octet.hpp"

namespace vsparse::bench {
namespace {

int run(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  DriverSession session(argc, argv);
  const gpusim::SimOptions& sim = session.sim();
  const int m = scale == Scale::kPaper ? 2048 : 1024;
  const int k = scale == Scale::kPaper ? 1024 : 512;
  const int n = 256;
  const int v = 4;

  std::printf("# Figure 18: bytes L2$ -> L1$, vector-sparse (V=%d) vs "
              "Blocked-ELL (block=%d), %dx%dx%d\n",
              v, v, m, k, n);
  std::printf("%-8s %-18s %-18s %s\n", "sparsity", "vector-sparse",
              "blocked-ELL", "ratio");

  for (double sparsity : sparsity_grid()) {
    char case_name[64];
    std::snprintf(case_name, sizeof(case_name), "fig18 sparsity=%.2f",
                  sparsity);
    run_case(case_name, [&] {
    gpusim::Device dev = session.device();
    Cvs a_host = make_suite_cvs({m, k}, sparsity, v);
    auto a = to_device(dev, a_host);
    BlockedEll ell_host = make_suite_blocked_ell({m, k}, sparsity, v);
    auto ell = to_device(dev, ell_host);
    auto b = dev.alloc<half_t>(static_cast<std::size_t>(k) * n);
    auto c = dev.alloc<half_t>(static_cast<std::size_t>(m) * n);
    DenseDevice<half_t> db{b, k, n, n, Layout::kRowMajor};
    DenseDevice<half_t> dc{c, m, n, n, Layout::kRowMajor};

    const auto vec = kernels::spmm_octet(dev, a, db, dc);
    dev.flush_all_caches();
    const auto bel = kernels::spmm_blocked_ell(dev, ell, db, dc);
    const double vb = static_cast<double>(vec.stats.bytes_l2_to_l1());
    const double eb = static_cast<double>(bel.stats.bytes_l2_to_l1());
    std::printf("%-8.2f %16.3e B %16.3e B %6.2f\n", sparsity, vb, eb,
                eb > 0 ? vb / eb : 0.0);
    });
  }
  std::printf("\n# paper shape: the vector encoding loads fewer (or equal) "
              "bytes from L2 at every sparsity level\n");
  return session.finish();
}

}  // namespace
}  // namespace vsparse::bench

int main(int argc, char** argv) { return vsparse::bench::run(argc, argv); }
